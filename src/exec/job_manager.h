// The job manager (JM) of section 4.1.3 / 4.2.1.
//
// One JM exists per submitted job. It walks the execution plan at runtime:
// tracks which tasks are ready (all parent tasks / parent stages completed),
// reports ready tasks and their estimated resource usage to the scheduler,
// and - once the scheduler picks a worker - streams the task's monotasks to
// that worker's per-resource queues exactly when each monotask becomes
// runnable. Completed monotasks report back, update the metadata store, and
// release their resources immediately (Obj-1 and Obj-2).
//
// The JM also maintains the job's remaining per-resource work vector R used
// by the SRJF ordering policy.
#ifndef SRC_EXEC_JOB_MANAGER_H_
#define SRC_EXEC_JOB_MANAGER_H_

#include <array>
#include <memory>
#include <utility>
#include <vector>

#include "src/dag/job.h"
#include "src/exec/cluster.h"
#include "src/exec/estimator.h"
#include "src/fault/fault_stats.h"
#include "src/spec/speculation.h"

namespace ursa {

class ControlPlane;
class Journal;
struct JobImage;
class Tracer;

// Callbacks from a job manager to the scheduling layer / driver.
class JobManagerListener {
 public:
  virtual ~JobManagerListener() = default;
  virtual void OnTaskReady([[maybe_unused]] JobId job, [[maybe_unused]] TaskId task) {}
  virtual void OnTaskCompleted([[maybe_unused]] JobId job, [[maybe_unused]] TaskId task) {}
  virtual void OnMonotaskCompleted([[maybe_unused]] JobId job,
                                   [[maybe_unused]] ResourceType type,
                                   [[maybe_unused]] double input_bytes) {}
  virtual void OnJobFinished([[maybe_unused]] JobId job) {}
};

enum class TaskState : int {
  kBlocked = 0,
  kReady = 1,
  kPlaced = 2,
  kCompleted = 3,
};

class JobManager {
 public:
  JobManager(Simulator* sim, Cluster* cluster, Job* job, JobManagerListener* listener);

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  // Resolves initial ready tasks and notifies the listener.
  void Start();

  // Aborts execution after a worker failure (section 4.3): releases the
  // memory of in-flight tasks, suppresses outstanding monotask callbacks,
  // and drops the job's metadata. The scheduler then re-runs the job from
  // its input checkpoint with a fresh JobManager.
  void Abort();
  bool aborted() const { return aborted_; }

  // Whether any incomplete task is placed on `worker`, or any completed
  // task's outputs live there (either makes a failure of `worker` fatal for
  // the job).
  bool DependsOnWorker(WorkerId worker) const;

  // --- Fault tolerance (section 4.3). ---
  // Retry policy for transient monotask failures; `stats` (may be null)
  // receives retry/recovery counters.
  void ConfigureFaultPolicy(int max_attempts, double backoff_base, double backoff_cap,
                            FaultStats* stats);

  struct RecoveryResult {
    int tasks_reset = 0;           // Tasks returned to the blocked/ready pool.
    int tasks_started_before = 0;  // Placed+completed tasks a full restart would redo.
    // True when the job cannot be repaired at stage granularity (its
    // checkpointed inputs are gone) and must restart from the checkpoint.
    // External job inputs are durable in this model, so this only trips if
    // that ever changes.
    bool inputs_lost = false;
  };
  // Stage-level lineage recovery: determines which task results died with
  // `failed` (in-flight placements and completed outputs that are still
  // needed downstream), resets exactly those tasks and their invalidated
  // dependents, and rebuilds the readiness frontier. Tasks running on
  // healthy workers keep running; completed tasks whose outputs were already
  // fully consumed are not re-executed. Returns how much work was reset.
  RecoveryResult RecoverFromWorkerFailure(WorkerId failed);

  // Worker the scheduler should avoid for this ready task (set after retry
  // exhaustion escalates to re-placement); kInvalidId when unconstrained.
  WorkerId avoided_worker(TaskId t) const {
    return tasks_[static_cast<size_t>(t)].avoid_worker;
  }

  // --- Control-plane integration (DESIGN.md section 14). ---
  // Routes dispatches and completion/failure reports through the message
  // layer instead of direct calls. Null (the default) keeps the synchronous
  // code path, byte-identical to the pre-message-layer behavior.
  void set_control_plane(ControlPlane* ctrl) { ctrl_ = ctrl; }
  // Decision journal receiving placement/completion/reset records for
  // crash-recovery replay. Null disables journaling.
  void set_journal(Journal* journal) { journal_ = journal; }
  // Incarnation of this JM for the job (bumped on every full restart and on
  // journal-less crash recovery); stale wire reports are fenced against it.
  void set_incarnation(int incarnation) { incarnation_ = incarnation; }
  int incarnation() const { return incarnation_; }

  // Wire-delivery entry points for identity-addressed completion/failure
  // reports. They dedup duplicates (done-flag / attempt mismatch) before
  // handing off to the direct handlers, making the endpoints idempotent
  // under message duplication and retransmission.
  void OnMonotaskCompleteWire(MonotaskId m, int generation, int attempt);
  void OnMonotaskFailedWire(MonotaskId m, int generation, int attempt);

  // --- Scheduler crash-recovery (DESIGN.md section 14). ---
  // Rebuilds runtime state from a journal image instead of Start(): folds in
  // completed monotasks without re-running their side effects (their outputs
  // already live in the metadata store, which is worker-side state), restores
  // placements without re-allocating worker memory (the charges survive the
  // scheduler crash), and rebuilds the readiness frontier.
  void RestoreFromImage(const JobImage& image);

  // Post-recovery reconciliation: re-sends every dispatch of a restored
  // placement that the worker never acked (the send died with the old
  // scheduler, or a pending retry-backoff event was lost in the crash).
  // Returns the number of re-dispatched monotasks.
  int ResyncDispatches();

  // Cancels every live speculative copy (called when the scheduler crashes:
  // the copies' cancel/liveness tokens would die with this JM, so they are
  // torn down deterministically instead of leaking onto workers).
  void ForfeitSpeculation();

  // --- Speculative execution (DESIGN.md section 9). ---
  // Enables straggler detection and speculative copies. `manager` (owned by
  // the scheduler, shared by all jobs) enforces the global budget and
  // receives all speculation accounting. Must outlive this JM.
  void ConfigureSpeculation(SpeculationManager* manager);

  // Appends this job's placed tasks that look like stragglers (elapsed time
  // beyond the robust stage threshold) to `out`. The caller ranks them and
  // decides, under the budget, which get a copy.
  void CollectStragglerCandidates(double now, std::vector<StragglerCandidate>* out) const;

  // Launches a speculative copy of placed task `t` on `worker`. The copy
  // runs the task's full monotask DAG there, buffering its outputs locally;
  // whichever execution finishes all monotasks first wins and the loser is
  // cancelled. Returns false when `worker` is the primary's worker, failed,
  // or lacks memory — or the task already has a copy.
  bool PlaceSpeculative(TaskId t, WorkerId worker);

  // Tears down speculative state touched by a failure of `worker`: copies
  // running there are cancelled; a primary lost there hands the task over to
  // its surviving copy. Called by the scheduler for every worker failure
  // (with or without lineage recovery) before RecoverFromWorkerFailure.
  void HandleWorkerFailureForSpeculation(WorkerId worker);

  // Placed-but-unfinished tasks (the speculation budget's denominator).
  int CountPlacedTasks() const;

  // Appends one (worker, stage) pair per live execution of a placed task —
  // the primary (unless its worker was lost) and any speculative copy. The
  // scheduler's co-location learner builds its per-tick residency snapshot
  // from this (DESIGN.md section 13).
  void CollectPlacedStages(std::vector<std::pair<WorkerId, StageId>>* out) const;

  // Test/inspection hooks.
  bool has_speculative_copy(TaskId t) const {
    return tasks_[static_cast<size_t>(t)].spec != nullptr;
  }
  WorkerId speculative_worker(TaskId t) const {
    const TaskRuntime& rt = tasks_[static_cast<size_t>(t)];
    return rt.spec != nullptr ? rt.spec->worker : kInvalidId;
  }
  bool primary_lost(TaskId t) const { return tasks_[static_cast<size_t>(t)].primary_lost; }

  Job& job() { return *job_; }
  const Job& job() const { return *job_; }
  JobId job_id() const { return job_->id; }

  // --- Scheduler-facing interface. ---
  // Ready-but-unplaced tasks (the scheduler's placement candidates).
  const std::vector<TaskId>& ready_tasks() const { return ready_unplaced_; }
  // Usage estimate for a ready task; per-resource bytes are cached at
  // ready-time, memory is refreshed against the current ready set.
  TaskUsage GetUsage(TaskId task) const;
  // Places a ready task on a worker. Allocates its estimated memory there;
  // returns false (and leaves the task ready) if the worker lacks memory.
  bool PlaceTask(TaskId task, WorkerId worker);

  // Attaches an event tracer (src/obs) recording task milestones. Not owned.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  // Job priority used for monotask queue ordering; set by the scheduler.
  double priority() const { return priority_; }
  void set_priority(double p) { priority_ = p; }

  // When false, monotasks are enqueued FIFO (intra-job ordering disabled;
  // the "MO" ablation of Table 6).
  void set_use_intra_ordering(bool enabled) { use_intra_ordering_ = enabled; }

  // Remaining per-resource work R (bytes), for SRJF (section 4.2.2).
  const std::array<double, kNumMonotaskResources>& remaining_work() const {
    return remaining_work_;
  }

  // --- State inspection. ---
  bool finished() const { return completed_tasks_ == static_cast<int>(plan().tasks().size()); }
  int completed_tasks() const { return completed_tasks_; }
  int total_tasks() const { return static_cast<int>(plan().tasks().size()); }
  TaskState task_state(TaskId t) const { return tasks_[static_cast<size_t>(t)].state; }
  WorkerId task_worker(TaskId t) const { return tasks_[static_cast<size_t>(t)].worker; }
  double finish_time() const { return finish_time_; }
  // Total CPU-seconds of actual compute the job consumed (for reports).
  double cpu_seconds_used() const { return cpu_seconds_used_; }

  struct TaskTiming {
    double ready_time = -1.0;
    double place_time = -1.0;
    double finish_time = -1.0;
  };
  const TaskTiming& task_timing(TaskId t) const {
    return tasks_[static_cast<size_t>(t)].timing;
  }

 private:
  // Runtime state of one live speculative copy. The copy re-runs the task's
  // whole monotask DAG on another worker; per-monotask state is indexed by
  // position in TaskSpec::monotasks. Outputs stay buffered in `outputs`
  // until the copy wins (then they are committed to the metadata store at
  // the copy's worker, making lineage point at the surviving replica); a
  // losing copy's buffer is simply dropped.
  struct SpecCopy {
    WorkerId worker = kInvalidId;
    // Message channel for the copy's dispatches (1 + per-job launch seq),
    // keeping its wire keys disjoint from the primary's (channel 0).
    int channel = 0;
    double start_time = 0.0;
    double allocated_memory = 0.0;
    double actual_memory = 0.0;
    int remaining_monotasks = 0;
    // Flipped to cancel the copy's queued / in-flight monotasks.
    std::shared_ptr<CancelToken> cancel = std::make_shared<CancelToken>();
    // Liveness token for the copy's callbacks: destroying the copy (race
    // decided, worker failure, lineage reset) disarms them, so no generation
    // bookkeeping is needed on this side.
    std::shared_ptr<const bool> alive = std::make_shared<const bool>(true);
    std::vector<OutputRecord> outputs;
    std::vector<int> remaining_deps;
    std::vector<char> submitted;
    std::vector<char> done;
    std::vector<double> input_bytes;
  };

  struct TaskRuntime {
    TaskState state = TaskState::kBlocked;
    int remaining_async_parents = 0;
    int remaining_sync_stages = 0;
    int remaining_monotasks = 0;
    WorkerId worker = kInvalidId;
    TaskUsage usage;          // bytes/input cached at ready time.
    double allocated_memory = 0.0;
    double actual_memory = 0.0;
    TaskTiming timing;
    // Bumped whenever the task's execution is invalidated (lineage reset or
    // re-placement); in-flight monotask callbacks from older generations are
    // ignored.
    int generation = 0;
    // Set after retry exhaustion: prefer any other worker at re-placement.
    WorkerId avoid_worker = kInvalidId;
    // Task is re-executing due to lineage recovery (for recovery latency).
    bool recovering = false;
    // Live speculative copy, if any.
    std::unique_ptr<SpecCopy> spec;
    // Cancellation token shared by the primary execution's monotasks
    // (created at placement when speculation is enabled); flipped when the
    // copy wins the race.
    std::shared_ptr<CancelToken> cancel;
    // The primary's worker died while a copy was live: the copy is the only
    // runner left, and a failure on it escalates to a full task reset.
    bool primary_lost = false;
    // Placement restored from a crash-recovery journal image. The original
    // cancel token died with the old scheduler, so the execution can no
    // longer be cancelled cooperatively; speculation skips such tasks.
    bool restored = false;
  };
  struct MonotaskRuntime {
    int remaining_deps = 0;
    bool submitted = false;
    bool done = false;
    int attempts = 0;  // Failed attempts on the current worker.
    double input_bytes = 0.0;
  };
  struct StageRuntime {
    int remaining_tasks = 0;
  };

  const ExecutionPlan& plan() const { return job_->plan; }
  void MarkReady(TaskId t);
  void SubmitMonotask(MonotaskId m);
  // Builds the RunnableMonotask for a submitted monotask and hands it to the
  // worker — directly, or through the control plane's reliable dispatch
  // channel when one is attached. Split from SubmitMonotask so the
  // post-recovery resync can re-send a dispatch without re-running the
  // submission bookkeeping.
  void DispatchMonotask(MonotaskId m);
  void OnMonotaskComplete(MonotaskId m, int generation);
  void OnMonotaskFailed(MonotaskId m, int generation);
  void ResubmitMonotask(MonotaskId m, int generation);
  // Resets a placed task's monotask progress and returns it to the ready
  // pool, avoiding its previous worker (retry-exhaustion escalation).
  void ResetTaskForReplacement(TaskId t);
  // Restores the runtime counters of one task to its never-started state
  // (returning completed monotask bytes to remaining_work_).
  void ResetTaskRuntime(TaskId t);
  void CompleteTask(TaskId t);
  void RemoveFromReady(TaskId t);

  // Speculation internals (DESIGN.md section 9).
  void SubmitSpecMonotask(TaskId t, int idx);
  void OnSpecMonotaskComplete(TaskId t, int idx);
  void OnSpecMonotaskFailed(TaskId t, int idx);
  // The copy finished every monotask first: cancel the primary execution,
  // commit the buffered outputs and complete the task from the copy's
  // worker.
  void OnSpecWin(TaskId t);
  enum class SpecEnd { kLost, kCancelled };
  // Tears down the live copy: flips its cancel token, sweeps its worker,
  // releases its memory and records its completed monotasks as wasted work.
  void CancelSpeculativeCopy(TaskId t, SpecEnd reason);
  // Approximate service time a monotask of `input_bytes` costs, for wasted-
  // work accounting of duplicates that ran to completion.
  double EstimateWasteSeconds(MonotaskId m, double input_bytes) const;

  Simulator* sim_;
  Cluster* cluster_;
  Job* job_;
  JobManagerListener* listener_;
  Tracer* tracer_ = nullptr;

  // Liveness token for callbacks that outlive this JM. Worker completion
  // callbacks and retry-backoff events capture a weak_ptr to it; once the JM
  // is destroyed (e.g. an aborted JM reclaimed after its job restarted) the
  // token expires and late callbacks become no-ops instead of use-after-free.
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);

  std::vector<TaskRuntime> tasks_;
  std::vector<MonotaskRuntime> monotasks_;
  std::vector<StageRuntime> stages_;
  std::vector<TaskId> ready_unplaced_;
  double ready_input_total_ = 0.0;
  std::array<double, kNumMonotaskResources> remaining_work_ = {0.0, 0.0, 0.0};
  double priority_ = 0.0;
  bool use_intra_ordering_ = true;
  bool aborted_ = false;
  int completed_tasks_ = 0;
  double finish_time_ = -1.0;
  double cpu_seconds_used_ = 0.0;

  // Fault-tolerance policy and bookkeeping.
  int max_monotask_attempts_ = 3;
  double retry_backoff_base_ = 0.25;
  double retry_backoff_cap_ = 4.0;
  FaultStats* fault_stats_ = nullptr;
  int recovering_outstanding_ = 0;
  double recovery_start_ = -1.0;

  // Control plane / crash-recovery (null when disabled).
  ControlPlane* ctrl_ = nullptr;
  Journal* journal_ = nullptr;
  int incarnation_ = 0;
  // Per-job speculative-copy launch counter; 1 + seq is the copy's message
  // channel, keeping its dispatch keys disjoint from the primary's.
  int spec_seq_ = 0;

  // Speculation (null/empty when disabled).
  SpeculationManager* spec_manager_ = nullptr;
  // Completed task durations per stage, feeding the straggler threshold.
  std::vector<RobustSample> stage_durations_;
};

}  // namespace ursa

#endif  // SRC_EXEC_JOB_MANAGER_H_
