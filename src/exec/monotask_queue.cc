#include "src/exec/monotask_queue.h"

#include <map>
#include <utility>

#include "src/common/logging.h"

namespace ursa {

void MonotaskQueue::Push(RunnableMonotask mt) {
  MutexLock lock(mu_);
  uint64_t seq;
  if (!free_slots_.empty()) {
    seq = free_slots_.back();
    free_slots_.pop_back();
    slots_[seq] = std::move(mt);
  } else {
    seq = next_seq_++;
    slots_.push_back(std::move(mt));
  }
  const RunnableMonotask& stored = slots_[seq];
  queued_bytes_ += stored.input_bytes;
  order_.insert(Entry{stored.job_priority, stored.intra_key, seq});
}

RunnableMonotask MonotaskQueue::Pop() {
  MutexLock lock(mu_);
  CHECK(!order_.empty());
  const Entry entry = *order_.begin();
  order_.erase(order_.begin());
  RunnableMonotask mt = std::move(slots_[entry.seq]);
  free_slots_.push_back(entry.seq);
  queued_bytes_ -= mt.input_bytes;
  return mt;
}

size_t MonotaskQueue::RemoveCancelled() {
  MutexLock lock(mu_);
  size_t removed = 0;
  for (auto it = order_.begin(); it != order_.end();) {
    RunnableMonotask& mt = slots_[it->seq];
    if (mt.cancel != nullptr && mt.cancel->cancelled) {
      queued_bytes_ -= mt.input_bytes;
      free_slots_.push_back(it->seq);
      mt = RunnableMonotask{};  // Drop callbacks and pull lists eagerly.
      it = order_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void MonotaskQueue::Reprioritize(const std::function<double(JobId)>& priority_of) {
  // Snapshot the queued (seq, job) pairs, query the scheduler-side priority
  // function with the lock released, then rebuild the order under the lock.
  // Entries pushed between the two critical sections (none today: the
  // simulator is single-threaded) keep the priority they were pushed with.
  std::vector<std::pair<uint64_t, JobId>> queued;
  {
    MutexLock lock(mu_);
    queued.reserve(order_.size());
    for (const Entry& entry : order_) {
      queued.emplace_back(entry.seq, slots_[entry.seq].job);
    }
  }
  std::map<uint64_t, double> new_priority;
  for (const auto& [seq, job] : queued) {
    new_priority.emplace(seq, priority_of(job));
  }
  MutexLock lock(mu_);
  std::set<Entry> rebuilt;
  for (const Entry& entry : order_) {
    RunnableMonotask& mt = slots_[entry.seq];
    const auto it = new_priority.find(entry.seq);
    if (it != new_priority.end()) {
      mt.job_priority = it->second;
    }
    rebuilt.insert(Entry{mt.job_priority, mt.intra_key, entry.seq});
  }
  order_ = std::move(rebuilt);
}

}  // namespace ursa
