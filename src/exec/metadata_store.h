// Metadata store maintained by each job manager (section 4.1.3): records the
// size and location of every materialized dataset partition so that resource
// usage of a task is known exactly at the time the task becomes ready.
#ifndef SRC_EXEC_METADATA_STORE_H_
#define SRC_EXEC_METADATA_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/dag/types.h"

namespace ursa {

struct PartitionInfo {
  double bytes = 0.0;
  WorkerId worker = kInvalidId;
};

class MetadataStore {
 public:
  void Put(JobId job, DataId data, int partition, double bytes, WorkerId worker);
  bool Has(JobId job, DataId data, int partition) const;
  const PartitionInfo& Get(JobId job, DataId data, int partition) const;

  // Sum of recorded partition sizes of a dataset.
  double DatasetBytes(JobId job, DataId data, int partitions) const;

  // Frees all metadata of a finished job.
  void DropJob(JobId job);

  // Drops every partition resident on `worker` (its data died with it).
  // Returns the number of partitions dropped.
  int DropWorker(WorkerId worker);

  size_t size() const { return map_.size(); }

 private:
  // Disjoint bit fields: 24 bits job, 20 bits data, 20 bits partition.
  static uint64_t Key(JobId job, DataId data, int partition) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(job) & 0xFFFFFFu) << 40) |
           (static_cast<uint64_t>(static_cast<uint32_t>(data) & 0xFFFFFu) << 20) |
           (static_cast<uint64_t>(static_cast<uint32_t>(partition) & 0xFFFFFu));
  }

  std::unordered_map<uint64_t, PartitionInfo> map_;
};

}  // namespace ursa

#endif  // SRC_EXEC_METADATA_STORE_H_
