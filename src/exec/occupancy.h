// Internally synchronized occupancy ledger of one worker (DESIGN.md
// section 10).
//
// The ledger owns every counter that concurrent monotask execution will
// contend on once the morsel-parallel simulator core lands: concurrency
// slots per resource, bytes of input currently being processed, cumulative
// completion counts, memory accounting, and the mirrors of the occupancy
// StepTrackers that baseline runtimes also write at container granularity.
// Worker routes every mutation through these methods, so clang's
// -Wthread-safety proves no unlocked access path exists.
//
// Each operation acquires `mu_` for just its own body; the lock is never
// held across foreign code. Check-and-act pairs that must be atomic under
// parallelism (slot admission, memory admission) are exposed as single
// Try* operations.
#ifndef SRC_EXEC_OCCUPANCY_H_
#define SRC_EXEC_OCCUPANCY_H_

#include <algorithm>
#include <cstdint>

#include "src/common/logging.h"
#include "src/common/mutex.h"
#include "src/dag/types.h"

namespace ursa {

// Mirrors of the Worker's occupancy StepTrackers; kCpuBusy/kCpuAlloc carry
// fractional cores because baseline runtimes charge container reservations.
enum class OccupancyKind { kCpuBusy = 0, kCpuAlloc = 1, kDiskBusy = 2 };
inline constexpr int kNumOccupancyKinds = 3;

class OccupancyLedger {
 public:
  OccupancyLedger() = default;
  OccupancyLedger(const OccupancyLedger&) = delete;
  OccupancyLedger& operator=(const OccupancyLedger&) = delete;

  // --- Concurrency slots (CPU cores, disk arms, network transfers). ---
  // Atomically takes one slot of `r` if fewer than `limit` are in use.
  bool TryAcquireSlot(ResourceType r, int limit) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (slots_[static_cast<size_t>(r)] >= limit) {
      return false;
    }
    ++slots_[static_cast<size_t>(r)];
    return true;
  }
  void ReleaseSlot(ResourceType r) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    --slots_[static_cast<size_t>(r)];
  }
  int slots_in_use(ResourceType r) const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return slots_[static_cast<size_t>(r)];
  }

  // --- Bytes of input currently being processed, per resource. ---
  // Negative deltas clamp at zero (mirrors the historical underflow guard).
  void AddRunningBytes(ResourceType r, double delta) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    double& bytes = running_bytes_[static_cast<size_t>(r)];
    bytes = std::max(bytes + delta, 0.0);
  }
  double running_bytes(ResourceType r) const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return running_bytes_[static_cast<size_t>(r)];
  }

  // --- Cumulative completed-monotask counters (survive failures). ---
  void IncrementCompleted(ResourceType r) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++completed_[static_cast<size_t>(r)];
  }
  int64_t completed(ResourceType r) const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return completed_[static_cast<size_t>(r)];
  }

  // --- Memory accounting (task granularity). ---
  // Atomically reserves `bytes` unless the allocation would exceed
  // `capacity` (+1 byte of float slack). On success stores the new total in
  // `*new_allocated` for the caller's StepTracker update.
  bool TryAllocateMemory(double bytes, double capacity, double* new_allocated)
      EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (mem_allocated_ + bytes > capacity + 1.0) {
      return false;
    }
    mem_allocated_ += bytes;
    *new_allocated = mem_allocated_;
    return true;
  }
  // Returns the new allocated total.
  double ReleaseMemory(double bytes) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    mem_allocated_ -= bytes;
    CHECK_GE(mem_allocated_, -1.0) << "memory release underflow";
    mem_allocated_ = std::max(mem_allocated_, 0.0);
    return mem_allocated_;
  }
  // Returns the new actual-use total (clamped at zero).
  double AddActualMemoryUse(double delta) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    mem_actual_ = std::max(mem_actual_ + delta, 0.0);
    return mem_actual_;
  }
  double mem_allocated() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return mem_allocated_;
  }

  // --- StepTracker mirrors (also written by baseline runtimes). ---
  // Returns the new value for the caller's tracker update.
  double AddOccupancy(OccupancyKind k, double delta) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    occupancy_[static_cast<size_t>(k)] += delta;
    return occupancy_[static_cast<size_t>(k)];
  }
  double occupancy(OccupancyKind k) const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return occupancy_[static_cast<size_t>(k)];
  }

  // Worker failure zeroes all live occupancy; cumulative completion counts
  // survive (they describe history, not machine state).
  void ResetForFailure() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    for (size_t r = 0; r < kNumMonotaskResources; ++r) {
      slots_[r] = 0;
      running_bytes_[r] = 0.0;
    }
    for (double& v : occupancy_) {
      v = 0.0;
    }
    mem_allocated_ = 0.0;
    mem_actual_ = 0.0;
  }

 private:
  mutable Mutex mu_;
  int slots_[kNumMonotaskResources] GUARDED_BY(mu_) = {0, 0, 0};
  double running_bytes_[kNumMonotaskResources] GUARDED_BY(mu_) = {0.0, 0.0, 0.0};
  int64_t completed_[kNumMonotaskResources] GUARDED_BY(mu_) = {0, 0, 0};
  double mem_allocated_ GUARDED_BY(mu_) = 0.0;
  double mem_actual_ GUARDED_BY(mu_) = 0.0;
  double occupancy_[kNumOccupancyKinds] GUARDED_BY(mu_) = {0.0, 0.0, 0.0};
};

}  // namespace ursa

#endif  // SRC_EXEC_OCCUPANCY_H_
