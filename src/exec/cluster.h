// A simulated cluster: N homogeneous workers plus the shared network fabric
// and the metadata store. Mirrors the paper's testbed shape (20 machines,
// 32 vcores, 128 GB RAM, 10 GbE, one disk) by default.
#ifndef SRC_EXEC_CLUSTER_H_
#define SRC_EXEC_CLUSTER_H_

#include <memory>
#include <vector>

#include "src/exec/metadata_store.h"
#include "src/exec/worker.h"
#include "src/net/flow_simulator.h"
#include "src/sim/simulator.h"

namespace ursa {

struct ClusterConfig {
  int num_workers = 20;
  WorkerConfig worker;
  double uplink_bytes_per_sec = 10e9 / 8.0;   // 10 Gbps.
  double downlink_bytes_per_sec = 10e9 / 8.0; // 10 Gbps.
  // When false (default), only receiver downlinks constrain transfers - the
  // contention model of section 4.2.3. Set true to also enforce sender
  // uplinks (full max-min fairness).
  bool enforce_uplinks = false;
};

class Cluster {
 public:
  Cluster(Simulator* sim, const ClusterConfig& config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }
  Worker& worker(WorkerId id) { return *workers_[static_cast<size_t>(id)]; }
  const Worker& worker(WorkerId id) const { return *workers_[static_cast<size_t>(id)]; }
  FlowSimulator& net() { return net_; }
  MetadataStore& metadata() { return metadata_; }
  Simulator& sim() { return *sim_; }
  const ClusterConfig& config() const { return config_; }

  int total_cores() const;
  double total_memory() const;

  // Attaches an event tracer (src/obs) to every worker. Not owned; null
  // detaches.
  void set_tracer(Tracer* tracer) {
    for (auto& w : workers_) {
      w->set_tracer(tracer);
    }
  }

 private:
  Simulator* sim_;
  ClusterConfig config_;
  FlowSimulator net_;
  MetadataStore metadata_;
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace ursa

#endif  // SRC_EXEC_CLUSTER_H_
