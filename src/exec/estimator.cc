#include "src/exec/estimator.h"

#include <map>

#include "src/common/logging.h"

namespace ursa {

namespace {

double LookupLocal(const std::vector<OutputRecord>* local, DataId data, int partition) {
  if (local == nullptr) {
    return -1.0;
  }
  for (const OutputRecord& rec : *local) {
    if (rec.data == data && rec.partition == partition) {
      return rec.bytes;
    }
  }
  return -1.0;
}

}  // namespace

double UsageEstimator::MonotaskInputBytes(const Job& job, MonotaskId mt_id,
                                          const MetadataStore& meta,
                                          const std::vector<OutputRecord>* local) {
  const ExecutionPlan& plan = job.plan;
  const MonotaskSpec& mt = plan.monotask(mt_id);
  const CollapsedOp& cop = plan.cop(mt.cop);
  double total = 0.0;
  for (size_t r = 0; r < cop.reads.size(); ++r) {
    const DataId d = cop.reads[r];
    switch (cop.read_modes[r]) {
      case ReadMode::kExternal:
        total += plan.external_sizes(d)[static_cast<size_t>(mt.index)];
        break;
      case ReadMode::kOnePartition: {
        const double local_bytes = LookupLocal(local, d, mt.index);
        if (local_bytes >= 0.0) {
          total += local_bytes;
        } else {
          total += meta.Get(job.id, d, mt.index).bytes;
        }
        break;
      }
      case ReadMode::kGatherSlices: {
        const int partitions = plan.dataset_partitions(d);
        const double weight =
            cop.slice_weights[static_cast<size_t>(mt.index)] / cop.parallelism;
        for (int p = 0; p < partitions; ++p) {
          total += meta.Get(job.id, d, p).bytes * weight;
        }
        break;
      }
    }
  }
  return total;
}

std::vector<OutputRecord> UsageEstimator::ComputeOutputs(const Job& job, MonotaskId mt_id,
                                                         double input_bytes) {
  const ExecutionPlan& plan = job.plan;
  const MonotaskSpec& mt = plan.monotask(mt_id);
  const CollapsedOp& cop = plan.cop(mt.cop);
  std::vector<OutputRecord> out;
  out.reserve(cop.creates.size());
  // Skew weights are applied where the skew physically materializes: at
  // gather time for shuffles (already folded into input_bytes), at output
  // time for CPU/disk producers.
  double weight = 1.0;
  if (cop.type != ResourceType::kNetwork) {
    weight = cop.slice_weights[static_cast<size_t>(mt.index)];
  }
  for (DataId d : cop.creates) {
    OutputRecord rec;
    rec.data = d;
    rec.partition = mt.index;
    rec.bytes = input_bytes * cop.cost.output_selectivity * weight;
    out.push_back(rec);
  }
  return out;
}

std::vector<RunnableMonotask::Pull> UsageEstimator::ResolvePulls(const Job& job,
                                                                 MonotaskId mt_id,
                                                                 const MetadataStore& meta) {
  return ResolvePulls(job, mt_id, meta, nullptr, kInvalidId);
}

std::vector<RunnableMonotask::Pull> UsageEstimator::ResolvePulls(
    const Job& job, MonotaskId mt_id, const MetadataStore& meta,
    const std::vector<OutputRecord>* local, WorkerId local_worker) {
  const ExecutionPlan& plan = job.plan;
  const MonotaskSpec& mt = plan.monotask(mt_id);
  const CollapsedOp& cop = plan.cop(mt.cop);
  CHECK(cop.type == ResourceType::kNetwork);
  // Ordered by WorkerId so the emitted pull list is deterministic without a
  // post-sort (detlint rule `no-unordered-iteration`).
  std::map<WorkerId, double> per_source;
  auto add_partition = [&](DataId d, int partition, double weight) {
    const double local_bytes = LookupLocal(local, d, partition);
    if (local_bytes >= 0.0) {
      per_source[local_worker] += local_bytes * weight;
      return;
    }
    const PartitionInfo& info = meta.Get(job.id, d, partition);
    per_source[info.worker] += info.bytes * weight;
  };
  for (size_t r = 0; r < cop.reads.size(); ++r) {
    const DataId d = cop.reads[r];
    switch (cop.read_modes[r]) {
      case ReadMode::kExternal:
        LOG(Fatal) << "network op " << cop.name << " reads external data";
        break;
      case ReadMode::kOnePartition:
        add_partition(d, mt.index, 1.0);
        break;
      case ReadMode::kGatherSlices: {
        const int partitions = plan.dataset_partitions(d);
        const double weight =
            cop.slice_weights[static_cast<size_t>(mt.index)] / cop.parallelism;
        for (int p = 0; p < partitions; ++p) {
          add_partition(d, p, weight);
        }
        break;
      }
    }
  }
  std::vector<RunnableMonotask::Pull> pulls;
  pulls.reserve(per_source.size());
  for (const auto& [worker, bytes] : per_source) {
    pulls.push_back(RunnableMonotask::Pull{worker, bytes});
  }
  return pulls;
}

TaskUsage UsageEstimator::EstimateTask(const Job& job, TaskId task_id,
                                       const MetadataStore& meta, double ready_input_total) {
  const ExecutionPlan& plan = job.plan;
  const TaskSpec& task = plan.task(task_id);
  TaskUsage usage;
  std::vector<OutputRecord> local;
  for (MonotaskId m : task.monotasks) {
    const MonotaskSpec& mt = plan.monotask(m);
    const double in = MonotaskInputBytes(job, m, meta, &local);
    usage.bytes[static_cast<size_t>(mt.type)] += in;
    if (mt.intask_deps.empty()) {
      usage.input_bytes += in;  // Root monotasks bring data into the task.
    }
    for (OutputRecord& rec : ComputeOutputs(job, m, in)) {
      local.push_back(rec);
    }
  }
  // Memory: min(r * M(j), m2i * I(t)), with r the task's share of the ready
  // input (section 4.2.1).
  const StageSpec& stage = plan.stage(task.stage);
  const double m2i = stage.m2i > 0.0 ? stage.m2i : job.spec.default_m2i;
  double r = 1.0;
  if (ready_input_total > 0.0) {
    r = std::min(1.0, usage.input_bytes / ready_input_total);
  }
  usage.memory = std::min(r * job.spec.declared_memory_bytes, m2i * usage.input_bytes);
  // Every task needs some memory to run at all.
  usage.memory = std::max(usage.memory, 16.0 * 1024 * 1024);
  return usage;
}

}  // namespace ursa
