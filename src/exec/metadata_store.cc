#include "src/exec/metadata_store.h"

#include "src/common/logging.h"

namespace ursa {

void MetadataStore::Put(JobId job, DataId data, int partition, double bytes, WorkerId worker) {
  PartitionInfo& info = map_[Key(job, data, partition)];
  info.bytes = bytes;
  info.worker = worker;
}

bool MetadataStore::Has(JobId job, DataId data, int partition) const {
  return map_.find(Key(job, data, partition)) != map_.end();
}

const PartitionInfo& MetadataStore::Get(JobId job, DataId data, int partition) const {
  auto it = map_.find(Key(job, data, partition));
  CHECK(it != map_.end()) << "missing partition metadata: job " << job << " data " << data
                          << " partition " << partition;
  return it->second;
}

double MetadataStore::DatasetBytes(JobId job, DataId data, int partitions) const {
  double total = 0.0;
  for (int p = 0; p < partitions; ++p) {
    auto it = map_.find(Key(job, data, p));
    if (it != map_.end()) {
      total += it->second.bytes;
    }
  }
  return total;
}

int MetadataStore::DropWorker(WorkerId worker) {
  int dropped = 0;
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->second.worker == worker) {
      it = map_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

void MetadataStore::DropJob(JobId job) {
  for (auto it = map_.begin(); it != map_.end();) {
    if (static_cast<JobId>((it->first >> 40) & 0xFFFFFFu) == job) {
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace ursa
