#include "src/exec/worker.h"

#include <algorithm>
#include <memory>

#include "src/common/logging.h"
#include "src/obs/trace.h"

namespace ursa {

Worker::Worker(Simulator* sim, FlowSimulator* net, WorkerId id, const WorkerConfig& config)
    : sim_(sim), net_(net), id_(id), config_(config) {
  CHECK_GT(config_.cores, 0);
  CHECK_GT(config_.cpu_byte_rate, 0.0);
  CHECK_GT(config_.memory_bytes, 0.0);
  CHECK_GT(config_.disks, 0);
  CHECK_GT(config_.disk_bytes_per_sec, 0.0);
  CHECK_GT(config_.network_concurrency, 0);
  ResetRateMonitors(0.0);
}

void Worker::ResetRateMonitors(double now) {
  for (RateMonitor& mon : rates_) {
    mon = RateMonitor{};
    mon.window_start = now;
  }
  rates_[static_cast<size_t>(ResourceType::kCpu)].rate = config_.cpu_byte_rate;
  rates_[static_cast<size_t>(ResourceType::kNetwork)].rate = config_.default_net_rate;
  rates_[static_cast<size_t>(ResourceType::kDisk)].rate = config_.disk_bytes_per_sec;
}

void Worker::Fail() {
  if (failed_) {
    return;  // Idempotent: never double-zero accounting.
  }
  failed_ = true;
  const double now = sim_->Now();
  failed_since_ = now;
  ++failure_epoch_;
  if (tracer_ != nullptr) {
    tracer_->WorkerEvent(now, TraceEventKind::kWorkerFail, id_);
  }
  // Drain the queues and zero occupancy. Each drained monotask reports its
  // loss (deferred, like the Submit-on-failed path) so job managers notice
  // without depending on lineage recovery. In-flight network completion
  // events are cancelled by the failure-epoch guard in Execute()'s lambdas;
  // registered CPU/disk monotasks are dropped here (their completion events
  // find no registry entry and no-op).
  for (auto& q : queues_) {
    while (!q.Empty()) {
      RunnableMonotask mt = q.Pop();
      if (mt.cancel != nullptr && mt.cancel->cancelled) {
        continue;  // Cancelled work has no listener to notify.
      }
      if (mt.on_failure) {
        sim_->Schedule(0.0, std::move(mt.on_failure));
      }
    }
  }
  // In-flight CPU/disk monotasks are discarded silently, exactly like the
  // pre-registry epoch guard did: the owning task is re-placed by lineage
  // recovery, not by per-monotask failure callbacks.
  for (auto& [key, fl] : inflight_) {
    sim_->Cancel(fl.event);
    TraceLost(fl.type, fl.input_bytes, now - fl.start, fl.counted, fl.job, fl.id,
              fl.trace_id);
  }
  inflight_.clear();
  ledger_.ResetForFailure();
  cpu_busy_.Set(now, 0.0);
  cpu_alloc_.Set(now, 0.0);
  disk_busy_.Set(now, 0.0);
  mem_alloc_.Set(now, 0.0);
  mem_used_.Set(now, 0.0);
  MarkLoadChanged();
  if (fail_listener_) {
    fail_listener_(id_);
  }
}

void Worker::Recover() {
  if (!failed_) {
    return;
  }
  failed_ = false;
  if (tracer_ != nullptr) {
    tracer_->WorkerEvent(sim_->Now(), TraceEventKind::kWorkerRecover, id_);
  }
  // The machine comes back empty: queues and occupancy were cleared at
  // failure time; rate monitors restart from factory defaults, and any
  // straggler injection is gone with the old process.
  ResetRateMonitors(sim_->Now());
  speed_factor_ = 1.0;
  pending_transient_failures_ = 0;
  transient_failure_prob_ = 0.0;
  MarkLoadChanged();
}

void Worker::StartHeartbeats(double interval, std::function<void(WorkerId)> sink,
                             std::function<bool()> active) {
  CHECK_GT(interval, 0.0);
  hb_interval_ = interval;
  hb_sink_ = std::move(sink);
  hb_active_ = std::move(active);
  if (hb_running_) {
    return;
  }
  hb_running_ = true;
  ScheduleHeartbeat();
}

void Worker::ScheduleHeartbeat() {
  sim_->Schedule(hb_interval_, [this] {
    if (!hb_active_ || !hb_active_()) {
      hb_running_ = false;  // Let the simulator drain; restartable.
      return;
    }
    if (!failed_ && hb_sink_) {
      hb_sink_(id_);
    }
    ScheduleHeartbeat();
  });
}

void Worker::SetTransientFailureProfile(double p, uint64_t seed) {
  CHECK_GE(p, 0.0);
  CHECK_LE(p, 1.0);
  transient_failure_prob_ = p;
  transient_rng_ = Rng(seed);
}

void Worker::set_speed_factor(double factor) {
  CHECK_GT(factor, 0.0);
  CHECK_LE(factor, 1.0);
  if (factor == speed_factor_) {
    return;
  }
  speed_factor_ = factor;
  if (failed_) {
    return;
  }
  // Apply to in-flight monotasks: bank the work done at the old rate and
  // reschedule the remainder at the new one. Without this, completion events
  // scheduled at dispatch time would ignore the change and a short
  // degraded-rate window could silently do nothing.
  const double now = sim_->Now();
  for (auto& [key, fl] : inflight_) {
    fl.done_work = DoneWork(fl, now);
    sim_->Cancel(fl.event);
    fl.rate = (fl.type == ResourceType::kCpu ? config_.cpu_byte_rate
                                             : config_.disk_bytes_per_sec) *
              speed_factor_;
    fl.resumed = now;
    const double remaining = std::max(0.0, fl.work - fl.done_work);
    const uint64_t k = key;
    fl.event = sim_->Schedule(remaining / fl.rate, [this, k] { FinishInFlight(k); });
  }
  MarkLoadChanged();
}

double Worker::DoneWork(const InFlight& fl, double now) {
  return std::min(fl.work, fl.done_work + (now - fl.resumed) * fl.rate);
}

void Worker::Submit(RunnableMonotask mt) {
  if (mt.cancel != nullptr && mt.cancel->cancelled) {
    return;  // Cancelled before submission; nobody is waiting.
  }
  if (failed_) {
    // Never strand the caller: report the loss so the job manager can
    // re-place the task instead of waiting forever (section 4.3).
    if (mt.on_failure) {
      sim_->Schedule(0.0, std::move(mt.on_failure));
    }
    return;
  }
  mt.queued_time = sim_->Now();
  if (tracer_ != nullptr) {
    mt.trace_id =
        tracer_->MonotaskQueued(mt.queued_time, mt.type, id_, mt.job, mt.id, mt.input_bytes);
  }
  // Latency-sensitive small network monotasks bypass the queue entirely and
  // do not consume a concurrency slot (section 4.2.3).
  if (mt.type == ResourceType::kNetwork &&
      mt.input_bytes < config_.small_transfer_bypass_bytes) {
    Execute(std::move(mt), /*counted=*/false);
    MarkLoadChanged();
    return;
  }
  const ResourceType r = mt.type;
  queue(r).Push(std::move(mt));
  PumpQueue(r);
  MarkLoadChanged();
}

void Worker::Reprioritize(const std::function<double(JobId)>& priority_of) {
  for (auto& q : queues_) {
    q.Reprioritize(priority_of);
  }
}

bool Worker::TryAllocateMemory(double bytes) {
  CHECK_GE(bytes, 0.0);
  if (failed_) {
    return false;
  }
  double allocated = 0.0;
  if (!ledger_.TryAllocateMemory(bytes, config_.memory_bytes, &allocated)) {
    return false;
  }
  mem_alloc_.Set(sim_->Now(), allocated);
  MarkLoadChanged();
  return true;
}

void Worker::ReleaseMemory(double bytes) {
  if (failed_) {
    return;
  }
  mem_alloc_.Set(sim_->Now(), ledger_.ReleaseMemory(bytes));
  MarkLoadChanged();
}

void Worker::AddActualMemoryUse(double delta) {
  if (failed_) {
    return;
  }
  mem_used_.Set(sim_->Now(), ledger_.AddActualMemoryUse(delta));
}

double Worker::ApproxProcessingTime(ResourceType r) const {
  if (r == ResourceType::kCpu && HasIdleCpu()) {
    return 0.0;
  }
  const double pending = queue(r).queued_bytes() + ledger_.running_bytes(r);
  const double rate = ProcessingRate(r);
  if (rate <= 0.0) {
    return pending > 0.0 ? 1e18 : 0.0;
  }
  return pending / rate;
}

double Worker::ProcessingRate(ResourceType r) const {
  const RateMonitor& mon = rates_[static_cast<size_t>(r)];
  double rate = mon.rate;
  if (r == ResourceType::kCpu) {
    rate *= config_.cores;
  }
  return rate;
}

void Worker::AddCpuBusy(double delta) {
  if (failed_) {
    return;
  }
  cpu_busy_.Set(sim_->Now(), ledger_.AddOccupancy(OccupancyKind::kCpuBusy, delta));
}

void Worker::AddCpuAllocated(double delta) {
  if (failed_) {
    return;
  }
  cpu_alloc_.Set(sim_->Now(), ledger_.AddOccupancy(OccupancyKind::kCpuAlloc, delta));
}

void Worker::AddDiskBusy(double delta) {
  if (failed_) {
    return;
  }
  disk_busy_.Set(sim_->Now(), ledger_.AddOccupancy(OccupancyKind::kDiskBusy, delta));
}

int Worker::SlotLimit(ResourceType r) const {
  switch (r) {
    case ResourceType::kCpu:
      return config_.cores;
    case ResourceType::kNetwork:
      return config_.network_concurrency;
    case ResourceType::kDisk:
      return config_.disks;
  }
  LOG(Fatal) << "unknown resource type";
  return 0;
}

void Worker::PumpQueue(ResourceType r) {
  const int limit = SlotLimit(r);
  while (!queue(r).Empty()) {
    // Slot admission is a single atomic check-and-increment so two pumping
    // threads can never oversubscribe the resource.
    if (!ledger_.TryAcquireSlot(r, limit)) {
      return;
    }
    RunnableMonotask mt = queue(r).Pop();
    if (mt.cancel != nullptr && mt.cancel->cancelled) {
      // Cancelled while queued; its resources were never charged.
      ledger_.ReleaseSlot(r);
      continue;
    }
    Execute(std::move(mt), /*counted=*/true);
  }
}

void Worker::Execute(RunnableMonotask mt, bool counted) {
  const double now = sim_->Now();
  const ResourceType r = mt.type;
  ledger_.AddRunningBytes(r, mt.input_bytes);
  const double input_bytes = mt.input_bytes;
  const JobId job = mt.job;
  const MonotaskId mid = mt.id;
  const uint64_t trace_id = mt.trace_id;
  if (tracer_ != nullptr) {
    tracer_->MonotaskDispatched(now, trace_id, r, id_, job, mid, input_bytes,
                                now - mt.queued_time, counted);
  }
  // Completion events scheduled below belong to this failure epoch. If the
  // worker fails (and possibly recovers) before they fire, the events are
  // stale: their occupancy was zeroed by Fail() and their result is lost, so
  // they must be discarded instead of decrementing the rejoined worker's
  // fresh accounting and delivering stale callbacks. CPU/disk monotasks are
  // guarded by their registry entry (Fail() clears it); network lambdas keep
  // the explicit epoch check.
  const int epoch = failure_epoch_;
  std::function<void()> on_complete = std::move(mt.on_complete);
  std::function<void()> on_failure = std::move(mt.on_failure);
  switch (r) {
    case ResourceType::kCpu:
    case ResourceType::kDisk: {
      if (counted) {
        if (r == ResourceType::kCpu) {
          AddCpuBusy(1.0);
          AddCpuAllocated(1.0);
        } else {
          AddDiskBusy(1.0);
        }
      }
      InFlight fl;
      fl.type = r;
      fl.input_bytes = input_bytes;
      fl.work = std::max(mt.work, 0.0);
      fl.start = now;
      fl.resumed = now;
      fl.rate = (r == ResourceType::kCpu ? config_.cpu_byte_rate
                                         : config_.disk_bytes_per_sec) *
                speed_factor_;
      fl.counted = counted;
      fl.job = job;
      fl.id = mid;
      fl.trace_id = trace_id;
      fl.cancel = std::move(mt.cancel);
      fl.on_complete = std::move(on_complete);
      fl.on_failure = std::move(on_failure);
      const uint64_t key = next_inflight_key_++;
      fl.event = sim_->Schedule(fl.work / fl.rate, [this, key] { FinishInFlight(key); });
      inflight_.emplace(key, std::move(fl));
      break;
    }
    case ResourceType::kNetwork: {
      // Pull from every sender at once (section 4.2.3). The paper's
      // contention model considers only the receiver's bandwidth, so the
      // concurrent pulls are represented as one aggregate flow into this
      // worker; purely local gathers move at the local copy rate.
      const double start = now;
      auto finish = [this, epoch, r, input_bytes, start, counted, job, mid, trace_id,
                     cancel = std::move(mt.cancel), cb = std::move(on_complete),
                     fb = std::move(on_failure)]() mutable {
        const double elapsed = sim_->Now() - start;
        if (failure_epoch_ != epoch || failed_) {
          TraceLost(r, input_bytes, elapsed, counted, job, mid, trace_id);
          return;
        }
        if (cancel != nullptr && cancel->cancelled) {
          // A flow cannot be retracted mid-transfer, so a cancelled network
          // monotask is disarmed here: the whole transfer is wasted work.
          DiscardCancelled(r, input_bytes, elapsed, counted, job, mid, trace_id,
                           input_bytes);
          return;
        }
        OnMonotaskDone(r, input_bytes, elapsed, counted, job, mid, trace_id,
                       std::move(cb), std::move(fb));
      };
      double remote_bytes = 0.0;
      double local_bytes = 0.0;
      WorkerId biggest_src = id_;
      double biggest = -1.0;
      for (const RunnableMonotask::Pull& pull : mt.pulls) {
        if (pull.src == id_) {
          local_bytes += pull.bytes;
        } else {
          remote_bytes += pull.bytes;
          if (pull.bytes > biggest) {
            biggest = pull.bytes;
            biggest_src = pull.src;
          }
        }
      }
      if (remote_bytes > 0.0) {
        net_->StartFlow(biggest_src, id_, remote_bytes + local_bytes, std::move(finish));
      } else if (local_bytes > 0.0) {
        net_->StartFlow(id_, id_, local_bytes, std::move(finish));
      } else {
        sim_->Schedule(0.0, std::move(finish));
      }
      break;
    }
  }
}

void Worker::TraceLost(ResourceType r, double input_bytes, double elapsed, bool counted,
                       JobId job, MonotaskId monotask, uint64_t trace_id) {
  if (tracer_ != nullptr) {
    tracer_->MonotaskFinished(sim_->Now(), trace_id, TraceEventKind::kLost, r, id_, job,
                              monotask, input_bytes, elapsed, counted);
  }
}

void Worker::FinishInFlight(uint64_t key) {
  const auto it = inflight_.find(key);
  if (it == inflight_.end()) {
    return;  // Lost to a failure epoch or disarmed by SweepCancelled.
  }
  InFlight fl = std::move(it->second);
  inflight_.erase(it);
  const double now = sim_->Now();
  const double elapsed = now - fl.start;
  if (fl.counted) {
    if (fl.type == ResourceType::kCpu) {
      AddCpuBusy(-1.0);
      AddCpuAllocated(-1.0);
    } else {
      AddDiskBusy(-1.0);
    }
  }
  if (fl.cancel != nullptr && fl.cancel->cancelled) {
    // Cancelled after the last (re)schedule but never swept: the work ran to
    // completion, all of it wasted.
    DiscardCancelled(fl.type, fl.input_bytes, elapsed, fl.counted, fl.job, fl.id,
                     fl.trace_id, fl.input_bytes);
    return;
  }
  OnMonotaskDone(fl.type, fl.input_bytes, elapsed, fl.counted, fl.job, fl.id, fl.trace_id,
                 std::move(fl.on_complete), std::move(fl.on_failure));
}

void Worker::SweepCancelled() {
  if (failed_) {
    return;  // Fail() already cleared queues, registry and occupancy.
  }
  for (auto& q : queues_) {
    q.RemoveCancelled();
  }
  const double now = sim_->Now();
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    InFlight& fl = it->second;
    if (fl.cancel == nullptr || !fl.cancel->cancelled) {
      ++it;
      continue;
    }
    sim_->Cancel(fl.event);
    InFlight dead = std::move(fl);
    it = inflight_.erase(it);
    if (dead.counted) {
      if (dead.type == ResourceType::kCpu) {
        AddCpuBusy(-1.0);
        AddCpuAllocated(-1.0);
      } else {
        AddDiskBusy(-1.0);
      }
    }
    const double done = DoneWork(dead, now);
    const double fraction = dead.work > 0.0 ? done / dead.work : 1.0;
    DiscardCancelled(dead.type, dead.input_bytes, now - dead.start, dead.counted, dead.job,
                     dead.id, dead.trace_id, fraction * dead.input_bytes);
  }
  MarkLoadChanged();
}

void Worker::DiscardCancelled(ResourceType r, double input_bytes, double elapsed,
                              bool counted, JobId job, MonotaskId monotask,
                              uint64_t trace_id, double done_bytes) {
  ledger_.AddRunningBytes(r, -input_bytes);
  if (tracer_ != nullptr) {
    tracer_->MonotaskFinished(sim_->Now(), trace_id, TraceEventKind::kCancelled, r, id_,
                              job, monotask, input_bytes, elapsed, counted);
  }
  if (waste_sink_) {
    waste_sink_(r, done_bytes, elapsed);
  }
  if (counted) {
    ledger_.ReleaseSlot(r);
    PumpQueue(r);
  }
  MarkLoadChanged();
}

void Worker::OnMonotaskDone(ResourceType r, double input_bytes, double elapsed, bool counted,
                            JobId job, MonotaskId monotask, uint64_t trace_id,
                            std::function<void()> on_complete,
                            std::function<void()> on_failure) {
  ledger_.AddRunningBytes(r, -input_bytes);
  // Transient failure: the monotask consumed its resources but produced no
  // result. Injected (scheduled) failures take precedence over the
  // probabilistic profile.
  bool transient_fail = false;
  if (pending_transient_failures_ > 0) {
    --pending_transient_failures_;
    transient_fail = true;
  } else if (transient_failure_prob_ > 0.0 &&
             transient_rng_.Bernoulli(transient_failure_prob_)) {
    transient_fail = true;
  }
  RecordRate(r, input_bytes, elapsed);
  if (tracer_ != nullptr) {
    tracer_->MonotaskFinished(sim_->Now(), trace_id,
                              transient_fail ? TraceEventKind::kFail
                                             : TraceEventKind::kComplete,
                              r, id_, job, monotask, input_bytes, elapsed, counted);
  }
  if (transient_fail) {
    if (on_failure) {
      on_failure();
    }
  } else {
    ledger_.IncrementCompleted(r);
    if (on_complete) {
      on_complete();
    }
  }
  if (counted) {
    ledger_.ReleaseSlot(r);
    PumpQueue(r);
  }
  MarkLoadChanged();
}

void Worker::RecordRate(ResourceType r, double bytes, double elapsed) {
  RateMonitor& mon = rates_[static_cast<size_t>(r)];
  mon.acc_bytes += bytes;
  mon.acc_time += elapsed;
  const double now = sim_->Now();
  if (now - mon.window_start >= config_.rate_window) {
    if (mon.acc_time > 1e-9 && mon.acc_bytes > 0.0) {
      mon.rate = mon.acc_bytes / mon.acc_time;
    }
    mon.acc_bytes = 0.0;
    mon.acc_time = 0.0;
    mon.window_start = now;
  }
}

}  // namespace ursa
