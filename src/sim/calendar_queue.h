// Calendar-queue implementation of EventQueue (DESIGN.md section 12).
//
// A calendar queue buckets pending events by time: the "year"
// [year_start, year_start + nbuckets * width) is split into fixed-width day
// buckets, events beyond the year sit in an unsorted overflow list, and only
// the bucket currently being drained is kept sorted. With width tuned to the
// mean inter-event gap, Push/Pop/Cancel are amortized O(1) versus the binary
// heap's O(log n) — the difference that matters at 10k workers and millions
// of in-flight monotasks.
//
// Determinism contract (shared with HeapEventQueue, verified by
// event_queue_property_test): pops come out in ascending (when, id) order,
// ids are assigned monotonically from 1, and the bucket layout is a pure
// function of the Push/Pop/Cancel sequence — no wall clock, no randomness,
// no address-dependent ordering. The unordered id index is lookup-only
// (never iterated), so it cannot perturb order.
//
// Tombstones: Cancel marks the node and drops its callback immediately;
// whole-queue compaction runs as soon as tombstones outnumber live events,
// so StoredCount() < 2 * PendingCount() + 1 at all times.
#ifndef SRC_SIM_CALENDAR_QUEUE_H_
#define SRC_SIM_CALENDAR_QUEUE_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "src/common/arena.h"
#include "src/common/mutex.h"
#include "src/sim/event_queue.h"

namespace ursa {

class CalendarEventQueue final : public EventQueue {
 public:
  EventId Push(double when, Callback cb) override EXCLUDES(mu_);
  bool Cancel(EventId id) override EXCLUDES(mu_);
  bool Empty() const override EXCLUDES(mu_);
  double NextTime() const override EXCLUDES(mu_);
  Fired Pop() override EXCLUDES(mu_);
  size_t PendingCount() const override EXCLUDES(mu_);
  size_t StoredCount() const override EXCLUDES(mu_);

 private:
  struct Node {
    double when;
    EventId id;
    bool cancelled;
    Callback cb;
  };

  // Files `node` into its day bucket (or overflow). Clamps to the bucket
  // being drained when `when` precedes it — safe because all earlier buckets
  // are empty and the drained bucket is totally ordered by (when, id).
  void Place(Node* node) REQUIRES(mu_);
  // Advances to the next non-empty bucket, sorting it on first touch and
  // discarding tombstones surfacing at its tail. Re-seeds the year from the
  // overflow list when the current year drains. Requires live_ > 0.
  void Settle() const REQUIRES(mu_);
  // Collects every stored node and rebuilds buckets/width around the current
  // event population (also drops all tombstones).
  void Rebuild() const REQUIRES(mu_);
  // Stable-erases tombstones from every bucket and the overflow list.
  void CompactAll() REQUIRES(mu_);

  mutable Mutex mu_;
  // All mutable: Empty/NextTime lazily sort, advance, and re-seed, mirroring
  // HeapEventQueue's mutable lazy-purge members.
  mutable ObjectPool<Node> pool_ GUARDED_BY(mu_);
  mutable std::vector<std::vector<Node*>> buckets_ GUARDED_BY(mu_);
  mutable std::vector<Node*> overflow_ GUARDED_BY(mu_);
  mutable size_t cur_ GUARDED_BY(mu_) = 0;          // Bucket being drained.
  mutable bool cur_sorted_ GUARDED_BY(mu_) = false;  // buckets_[cur_] sorted?
  mutable double year_start_ GUARDED_BY(mu_) = 0.0;
  mutable double width_ GUARDED_BY(mu_) = 1.0;
  mutable size_t cancelled_count_ GUARDED_BY(mu_) = 0;
  // Lookup-only (Cancel by id); never iterated, so determinism-neutral.
  std::unordered_map<EventId, Node*> index_ GUARDED_BY(mu_);
  size_t live_ GUARDED_BY(mu_) = 0;
  EventId next_id_ GUARDED_BY(mu_) = 1;
};

}  // namespace ursa

#endif  // SRC_SIM_CALENDAR_QUEUE_H_
