// Discrete-event simulator. Owns a virtual clock and an event queue;
// everything in the simulated cluster (monotask completions, heartbeats,
// scheduling ticks, flow re-computations) is driven by events scheduled here.
//
// The simulator is strictly single-threaded; all simulated components may
// freely share state without locks. The backing queue (binary heap or
// calendar queue, see event_queue.h) is picked at construction; both obey
// the same (when, id) ordering contract, so the choice never changes a
// seeded run's behavior.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <functional>
#include <limits>
#include <memory>

#include "src/sim/event_queue.h"

namespace ursa {

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  explicit Simulator(EventQueueKind queue_kind = EventQueueKind::kBinaryHeap)
      : queue_(MakeEventQueue(queue_kind)) {}

  double Now() const { return now_; }

  // Schedules `cb` to run `delay` seconds from now (>= 0).
  EventId Schedule(double delay, Callback cb);

  // Schedules `cb` at absolute time `when` (>= Now()).
  EventId ScheduleAt(double when, Callback cb);

  // Cancels a pending event; no-op if already fired/cancelled.
  bool Cancel(EventId id) { return queue_->Cancel(id); }

  // Runs until the queue drains or the clock passes `until`.
  // Returns the number of events fired.
  uint64_t Run(double until = std::numeric_limits<double>::infinity());

  // Fires exactly one event if any is pending; returns whether one fired.
  bool Step();

  bool Idle() const { return queue_->Empty(); }
  size_t PendingEvents() const { return queue_->PendingCount(); }

 private:
  std::unique_ptr<EventQueue> queue_;
  double now_ = 0.0;
};

}  // namespace ursa

#endif  // SRC_SIM_SIMULATOR_H_
