// Priority queue of timestamped events with stable ordering and O(log n)
// lazy cancellation. Ties at the same timestamp fire in scheduling order,
// which makes simulations deterministic for a fixed seed.
//
// Internally synchronized (DESIGN.md section 10): every public method
// acquires `mu_`, and the lock is never held while an event callback runs
// (Pop() hands the callback to the caller). The event queue is the innermost
// lock of the repo-wide hierarchy, so any component may call into it while
// holding its own lock.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/mutex.h"

namespace ursa {

using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Enqueues `cb` to fire at absolute time `when`. Returns a handle usable
  // with Cancel().
  EventId Push(double when, Callback cb) EXCLUDES(mu_);

  // Cancels a pending event. Cancelling an already-fired or already-cancelled
  // event is a no-op; returns whether the event was actually pending.
  bool Cancel(EventId id) EXCLUDES(mu_);

  bool Empty() const EXCLUDES(mu_);
  double NextTime() const EXCLUDES(mu_);

  // Removes and returns the earliest event. Must not be called when Empty().
  struct Fired {
    double when;
    EventId id;
    Callback cb;
  };
  Fired Pop() EXCLUDES(mu_);

  size_t PendingCount() const EXCLUDES(mu_);

 private:
  struct Entry {
    double when;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.id > b.id;  // FIFO among same-time events.
    }
  };

  // Lazily drops cancelled entries from the heap head; `mutable` members let
  // the const observers (Empty, NextTime) share it without const_cast.
  void DropCancelledHead() const REQUIRES(mu_);

  mutable Mutex mu_;
  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_ GUARDED_BY(mu_);
  mutable std::unordered_set<EventId> cancelled_ GUARDED_BY(mu_);
  // Callbacks stored out-of-heap so Entry stays trivially copyable.
  std::unordered_map<EventId, Callback> callbacks_ GUARDED_BY(mu_);
  EventId next_id_ GUARDED_BY(mu_) = 1;
};

}  // namespace ursa

#endif  // SRC_SIM_EVENT_QUEUE_H_
