// Priority queue of timestamped events with stable ordering and O(log n)
// lazy cancellation. Ties at the same timestamp fire in scheduling order,
// which makes simulations deterministic for a fixed seed.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ursa {

using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Enqueues `cb` to fire at absolute time `when`. Returns a handle usable
  // with Cancel().
  EventId Push(double when, Callback cb);

  // Cancels a pending event. Cancelling an already-fired or already-cancelled
  // event is a no-op; returns whether the event was actually pending.
  bool Cancel(EventId id);

  bool Empty() const;
  double NextTime() const;

  // Removes and returns the earliest event. Must not be called when Empty().
  struct Fired {
    double when;
    EventId id;
    Callback cb;
  };
  Fired Pop();

  size_t PendingCount() const { return heap_.size() - cancelled_.size(); }

 private:
  struct Entry {
    double when;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.id > b.id;  // FIFO among same-time events.
    }
  };

  void DropCancelledHead();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
  // Callbacks stored out-of-heap so Entry stays trivially copyable.
  std::unordered_map<EventId, Callback> callbacks_;
  EventId next_id_ = 1;
};

}  // namespace ursa

#endif  // SRC_SIM_EVENT_QUEUE_H_
