// Priority queue of timestamped events with stable ordering and O(log n)
// lazy cancellation. Ties at the same timestamp fire in scheduling order,
// which makes simulations deterministic for a fixed seed.
//
// `EventQueue` is the abstract interface; two implementations share its
// contract bit-for-bit (same Push/Cancel/Pop semantics, ties broken by
// ascending EventId):
//   * HeapEventQueue — binary heap, the paper-scale default.
//   * CalendarEventQueue (calendar_queue.h) — bucketed calendar queue with
//     amortized O(1) operations for the 10k-worker regime.
// MakeEventQueue() selects one by EventQueueKind; DESIGN.md section 12
// documents the data structures and the determinism argument.
//
// Implementations are internally synchronized (DESIGN.md section 10): every
// public method acquires the implementation's own mutex, and the lock is
// never held while an event callback runs (Pop() hands the callback to the
// caller). The event queue is the innermost lock of the repo-wide hierarchy,
// so any component may call into it while holding its own lock.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/mutex.h"

namespace ursa {

using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

// Which concrete EventQueue a simulator drains (selected via config/CLI).
enum class EventQueueKind {
  kBinaryHeap,
  kCalendar,
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  struct Fired {
    double when;
    EventId id;
    Callback cb;
  };

  virtual ~EventQueue() = default;

  // Enqueues `cb` to fire at absolute time `when`. Returns a handle usable
  // with Cancel(). Ids increase monotonically from 1 across the queue's
  // lifetime; equal-time events fire in ascending-id (FIFO) order.
  virtual EventId Push(double when, Callback cb) = 0;

  // Cancels a pending event. Cancelling an already-fired or already-cancelled
  // event is a no-op; returns whether the event was actually pending.
  virtual bool Cancel(EventId id) = 0;

  virtual bool Empty() const = 0;
  virtual double NextTime() const = 0;

  // Removes and returns the earliest event. Must not be called when Empty().
  virtual Fired Pop() = 0;

  // Live (non-cancelled) events still pending.
  virtual size_t PendingCount() const = 0;

  // Entries physically stored, including cancelled tombstones not yet
  // compacted. Tests use this to pin down tombstone-growth bounds.
  virtual size_t StoredCount() const = 0;
};

std::unique_ptr<EventQueue> MakeEventQueue(EventQueueKind kind);
const char* EventQueueKindName(EventQueueKind kind);

// Binary-heap implementation. Cancellation is lazy (tombstones dropped when
// they surface at the heap top) but bounded: whenever tombstones outnumber
// live events the whole heap is compacted in one pass, so cancel-heavy
// workloads (speculation + chaos) keep StoredCount() < 2 * PendingCount() + 1.
class HeapEventQueue final : public EventQueue {
 public:
  EventId Push(double when, Callback cb) override EXCLUDES(mu_);
  bool Cancel(EventId id) override EXCLUDES(mu_);
  bool Empty() const override EXCLUDES(mu_);
  double NextTime() const override EXCLUDES(mu_);
  Fired Pop() override EXCLUDES(mu_);
  size_t PendingCount() const override EXCLUDES(mu_);
  size_t StoredCount() const override EXCLUDES(mu_);

 private:
  struct Entry {
    double when;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.id > b.id;  // FIFO among same-time events.
    }
  };

  // Lazily drops cancelled entries from the heap head; `mutable` members let
  // the const observers (Empty, NextTime) share it without const_cast.
  void DropCancelledHead() const REQUIRES(mu_);
  // Rewrites the heap without tombstones once they outnumber live entries.
  void CompactIfWorthwhile() REQUIRES(mu_);
  // heap_.size() == callbacks_.size() + cancelled_.size() always; CHECKed so
  // PendingCount can never underflow.
  void CheckInvariant() const REQUIRES(mu_);

  mutable Mutex mu_;
  mutable std::vector<Entry> heap_ GUARDED_BY(mu_);  // std::*_heap under Later.
  mutable std::unordered_set<EventId> cancelled_ GUARDED_BY(mu_);
  // Callbacks stored out-of-heap so Entry stays trivially copyable.
  std::unordered_map<EventId, Callback> callbacks_ GUARDED_BY(mu_);
  EventId next_id_ GUARDED_BY(mu_) = 1;
};

}  // namespace ursa

#endif  // SRC_SIM_EVENT_QUEUE_H_
