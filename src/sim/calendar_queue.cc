#include "src/sim/calendar_queue.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/common/logging.h"

namespace ursa {
namespace {

// Bucket-count bounds and the target mean occupancy that triggers regrowth.
constexpr size_t kMinBuckets = 64;
constexpr size_t kMaxBuckets = size_t{1} << 17;
constexpr size_t kMaxFill = 8;
constexpr double kMinWidth = 1e-9;

// Descending (when, id): the drained bucket pops from the back.
bool NodeAfter(double a_when, EventId a_id, double b_when, EventId b_id) {
  if (a_when != b_when) {
    return a_when > b_when;
  }
  return a_id > b_id;
}

}  // namespace

EventId CalendarEventQueue::Push(double when, Callback cb) {
  MutexLock lock(mu_);
  const EventId id = next_id_++;
  if (buckets_.empty()) {
    // First event seeds the year; width stays coarse until the first
    // population-based Rebuild().
    buckets_.resize(kMinBuckets);
    year_start_ = when;
    width_ = 1.0;
    cur_ = 0;
    cur_sorted_ = false;
  }
  Node* node = pool_.New(Node{when, id, false, std::move(cb)});
  index_.emplace(id, node);
  ++live_;
  Place(node);
  if (live_ > buckets_.size() * kMaxFill && buckets_.size() < kMaxBuckets) {
    Rebuild();
  }
  return id;
}

void CalendarEventQueue::Place(Node* node) {
  const double pos = (node->when - year_start_) / width_;
  if (pos >= static_cast<double>(buckets_.size())) {
    overflow_.push_back(node);
    return;
  }
  size_t idx = pos < 0.0 ? cur_ : std::max(cur_, static_cast<size_t>(pos));
  if (idx >= buckets_.size()) {
    idx = buckets_.size() - 1;
  }
  std::vector<Node*>& bucket = buckets_[idx];
  if (idx == cur_ && cur_sorted_) {
    // Keep the drained bucket's descending (when, id) order intact.
    auto it = std::lower_bound(
        bucket.begin(), bucket.end(), node, [](const Node* a, const Node* b) {
          return NodeAfter(a->when, a->id, b->when, b->id);
        });
    bucket.insert(it, node);
  } else {
    bucket.push_back(node);
  }
}

bool CalendarEventQueue::Cancel(EventId id) {
  MutexLock lock(mu_);
  auto it = index_.find(id);
  if (it == index_.end()) {
    return false;
  }
  Node* node = it->second;
  index_.erase(it);
  node->cancelled = true;
  node->cb = Callback();  // Release captured resources eagerly.
  CHECK_GT(live_, 0u);
  --live_;
  ++cancelled_count_;
  if (cancelled_count_ > live_) {
    CompactAll();
  }
  return true;
}

void CalendarEventQueue::CompactAll() {
  for (std::vector<Node*>& bucket : buckets_) {
    size_t out = 0;
    for (Node* node : bucket) {
      if (node->cancelled) {
        pool_.Delete(node);
      } else {
        bucket[out++] = node;
      }
    }
    bucket.resize(out);
  }
  size_t out = 0;
  for (Node* node : overflow_) {
    if (node->cancelled) {
      pool_.Delete(node);
    } else {
      overflow_[out++] = node;
    }
  }
  overflow_.resize(out);
  cancelled_count_ = 0;
}

bool CalendarEventQueue::Empty() const {
  MutexLock lock(mu_);
  return live_ == 0;
}

double CalendarEventQueue::NextTime() const {
  MutexLock lock(mu_);
  if (live_ == 0) {
    return std::numeric_limits<double>::infinity();
  }
  Settle();
  return buckets_[cur_].back()->when;
}

void CalendarEventQueue::Settle() const {
  for (;;) {
    while (cur_ < buckets_.size()) {
      std::vector<Node*>& bucket = buckets_[cur_];
      if (!cur_sorted_) {
        std::sort(bucket.begin(), bucket.end(), [](const Node* a, const Node* b) {
          return NodeAfter(a->when, a->id, b->when, b->id);
        });
        cur_sorted_ = true;
      }
      while (!bucket.empty() && bucket.back()->cancelled) {
        pool_.Delete(bucket.back());
        bucket.pop_back();
        CHECK_GT(cancelled_count_, 0u);
        --cancelled_count_;
      }
      if (!bucket.empty()) {
        return;
      }
      ++cur_;
      cur_sorted_ = false;
    }
    // Year drained; every remaining event is in overflow. live_ > 0
    // guarantees Rebuild() repopulates at least one bucket.
    Rebuild();
  }
}

void CalendarEventQueue::Rebuild() const {
  std::vector<Node*> nodes;
  nodes.reserve(live_);
  double min_when = std::numeric_limits<double>::infinity();
  double max_when = -std::numeric_limits<double>::infinity();
  buckets_.push_back(std::move(overflow_));  // Gather overflow like one more bucket.
  overflow_.clear();
  for (std::vector<Node*>& bucket : buckets_) {
    for (Node* node : bucket) {
      if (node->cancelled) {
        pool_.Delete(node);
        CHECK_GT(cancelled_count_, 0u);
        --cancelled_count_;
        continue;
      }
      min_when = std::min(min_when, node->when);
      max_when = std::max(max_when, node->when);
      nodes.push_back(node);
    }
    bucket.clear();
  }
  CHECK_EQ(nodes.size(), live_);

  size_t nbuckets = kMinBuckets;
  while (nbuckets < nodes.size() && nbuckets < kMaxBuckets) {
    nbuckets *= 2;
  }
  const double span = max_when - min_when;
  double width = 1.0;
  if (!nodes.empty() && span > 0.0) {
    width = std::max(span / static_cast<double>(nbuckets), kMinWidth);
  }
  buckets_.assign(nbuckets, {});
  year_start_ = nodes.empty() ? 0.0 : min_when;
  width_ = width;
  cur_ = 0;
  cur_sorted_ = false;
  for (Node* node : nodes) {
    const double pos = (node->when - year_start_) / width_;
    if (pos >= static_cast<double>(nbuckets)) {
      overflow_.push_back(node);
      continue;
    }
    size_t idx = pos < 0.0 ? 0 : static_cast<size_t>(pos);
    if (idx >= nbuckets) {
      idx = nbuckets - 1;
    }
    buckets_[idx].push_back(node);
  }
}

EventQueue::Fired CalendarEventQueue::Pop() {
  MutexLock lock(mu_);
  CHECK_GT(live_, 0u);
  Settle();
  std::vector<Node*>& bucket = buckets_[cur_];
  Node* node = bucket.back();
  bucket.pop_back();
  Fired fired{node->when, node->id, std::move(node->cb)};
  index_.erase(node->id);
  --live_;
  pool_.Delete(node);
  return fired;
}

size_t CalendarEventQueue::PendingCount() const {
  MutexLock lock(mu_);
  CHECK_EQ(live_, index_.size());
  return live_;
}

size_t CalendarEventQueue::StoredCount() const {
  MutexLock lock(mu_);
  return live_ + cancelled_count_;
}

}  // namespace ursa
