#include "src/sim/simulator.h"

#include "src/common/logging.h"

namespace ursa {

EventId Simulator::Schedule(double delay, Callback cb) {
  CHECK_GE(delay, 0.0);
  return queue_->Push(now_ + delay, std::move(cb));
}

EventId Simulator::ScheduleAt(double when, Callback cb) {
  CHECK_GE(when, now_);
  return queue_->Push(when, std::move(cb));
}

uint64_t Simulator::Run(double until) {
  uint64_t fired = 0;
  while (!queue_->Empty() && queue_->NextTime() <= until) {
    EventQueue::Fired event = queue_->Pop();
    CHECK_GE(event.when, now_);
    now_ = event.when;
    event.cb();
    ++fired;
  }
  return fired;
}

bool Simulator::Step() {
  if (queue_->Empty()) {
    return false;
  }
  EventQueue::Fired event = queue_->Pop();
  now_ = event.when;
  event.cb();
  return true;
}

}  // namespace ursa
