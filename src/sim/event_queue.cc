#include "src/sim/event_queue.h"

#include <limits>

#include "src/common/logging.h"

namespace ursa {

EventId EventQueue::Push(double when, Callback cb) {
  MutexLock lock(mu_);
  const EventId id = next_id_++;
  heap_.push(Entry{when, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

bool EventQueue::Cancel(EventId id) {
  MutexLock lock(mu_);
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) {
    return false;
  }
  callbacks_.erase(it);
  cancelled_.insert(id);
  return true;
}

void EventQueue::DropCancelledHead() const {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) {
      return;
    }
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool EventQueue::Empty() const {
  MutexLock lock(mu_);
  DropCancelledHead();
  return heap_.empty();
}

double EventQueue::NextTime() const {
  MutexLock lock(mu_);
  DropCancelledHead();
  if (heap_.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  return heap_.top().when;
}

EventQueue::Fired EventQueue::Pop() {
  MutexLock lock(mu_);
  DropCancelledHead();
  CHECK(!heap_.empty());
  const Entry top = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(top.id);
  CHECK(it != callbacks_.end());
  Fired fired{top.when, top.id, std::move(it->second)};
  callbacks_.erase(it);
  return fired;
}

size_t EventQueue::PendingCount() const {
  MutexLock lock(mu_);
  return heap_.size() - cancelled_.size();
}

}  // namespace ursa
