#include "src/sim/event_queue.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/common/logging.h"
#include "src/sim/calendar_queue.h"

namespace ursa {

std::unique_ptr<EventQueue> MakeEventQueue(EventQueueKind kind) {
  switch (kind) {
    case EventQueueKind::kBinaryHeap:
      return std::make_unique<HeapEventQueue>();
    case EventQueueKind::kCalendar:
      return std::make_unique<CalendarEventQueue>();
  }
  CHECK(false) << "unknown EventQueueKind";
  return nullptr;
}

const char* EventQueueKindName(EventQueueKind kind) {
  switch (kind) {
    case EventQueueKind::kBinaryHeap:
      return "heap";
    case EventQueueKind::kCalendar:
      return "calendar";
  }
  return "?";
}

EventId HeapEventQueue::Push(double when, Callback cb) {
  MutexLock lock(mu_);
  const EventId id = next_id_++;
  heap_.push_back(Entry{when, id});
  std::push_heap(heap_.begin(), heap_.end(), Later());
  callbacks_.emplace(id, std::move(cb));
  return id;
}

bool HeapEventQueue::Cancel(EventId id) {
  MutexLock lock(mu_);
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) {
    return false;
  }
  callbacks_.erase(it);
  cancelled_.insert(id);
  CompactIfWorthwhile();
  return true;
}

void HeapEventQueue::CompactIfWorthwhile() {
  // Eager compaction: once tombstones outnumber live entries (i.e. exceed
  // half the heap), one O(n) rebuild halves the footprint. Amortized O(1)
  // per cancel because a rebuild is always preceded by >= n/2 cancels.
  if (cancelled_.size() <= callbacks_.size()) {
    return;
  }
  std::vector<Entry> live;
  live.reserve(callbacks_.size());
  for (const Entry& e : heap_) {
    if (cancelled_.count(e.id) == 0) {
      live.push_back(e);
    }
  }
  heap_ = std::move(live);
  cancelled_.clear();
  std::make_heap(heap_.begin(), heap_.end(), Later());
  CheckInvariant();
}

void HeapEventQueue::CheckInvariant() const {
  // PendingCount() == callbacks_.size() by construction; the CHECK pins the
  // heap bookkeeping so the count can never underflow.
  CHECK_EQ(heap_.size(), callbacks_.size() + cancelled_.size());
}

void HeapEventQueue::DropCancelledHead() const {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.front().id);
    if (it == cancelled_.end()) {
      return;
    }
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), Later());
    heap_.pop_back();
  }
}

bool HeapEventQueue::Empty() const {
  MutexLock lock(mu_);
  DropCancelledHead();
  return heap_.empty();
}

double HeapEventQueue::NextTime() const {
  MutexLock lock(mu_);
  DropCancelledHead();
  if (heap_.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  return heap_.front().when;
}

EventQueue::Fired HeapEventQueue::Pop() {
  MutexLock lock(mu_);
  DropCancelledHead();
  CHECK(!heap_.empty());
  const Entry top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), Later());
  heap_.pop_back();
  auto it = callbacks_.find(top.id);
  CHECK(it != callbacks_.end());
  Fired fired{top.when, top.id, std::move(it->second)};
  callbacks_.erase(it);
  return fired;
}

size_t HeapEventQueue::PendingCount() const {
  MutexLock lock(mu_);
  CheckInvariant();
  return callbacks_.size();
}

size_t HeapEventQueue::StoredCount() const {
  MutexLock lock(mu_);
  return heap_.size();
}

}  // namespace ursa
