// Scheduler decision journal + checkpoint model (DESIGN.md section 14).
//
// The scheduler appends one compact record per durable decision (admission,
// job-manager (re)start, placement, monotask completion/failure, task reset,
// task/job completion). A periodic checkpoint folds the records appended so
// far into per-job images (JobImage) and truncates them, so journal memory
// and recovery replay work track live state rather than the full decision
// history; a job's image and records are dropped outright when it finishes.
// Because this is a simulator, the "disk" is in-memory and recovery replay
// cost is charged only for the post-checkpoint suffix.
#ifndef SRC_CTRL_JOURNAL_H_
#define SRC_CTRL_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/dag/plan.h"
#include "src/dag/types.h"

namespace ursa {

enum class JournalKind : int8_t {
  kAdmit = 0,      // job admitted (reservation committed)
  kStartJm = 1,    // job manager (re)started; gen_or_inc = incarnation
  kPlace = 2,      // task placed; worker, gen_or_inc = generation, x/y = mem
  kMonoDone = 3,   // monotask completed; x = input_bytes
  kMonoFailed = 4, // monotask execution failed (attempt consumed)
  kTaskReset = 5,  // task invalidated (lineage reset / re-placement)
  kTaskDone = 6,   // task completed; time = finish time
  kJobFinish = 7,  // job finished; its journal state is dropped on append
};

struct JournalRecord {
  JournalKind kind = JournalKind::kAdmit;
  JobId job = kInvalidId;
  int32_t id = kInvalidId;  // TaskId or MonotaskId depending on kind.
  WorkerId worker = kInvalidId;
  int32_t gen_or_inc = 0;
  double x = 0.0;  // kPlace: allocated memory; kMonoDone: input bytes.
  double y = 0.0;  // kPlace: actual memory.
  double time = 0.0;
};

// Restored per-task state, rebuilt purely from the journal.
struct TaskImage {
  WorkerId worker = kInvalidId;
  int generation = 0;
  bool done = false;
  double allocated_memory = 0.0;
  double actual_memory = 0.0;
  double place_time = -1.0;
  double finish_time = -1.0;
};

// Restored per-job state. Sized lazily on the first record for the job.
struct JobImage {
  bool admitted = false;
  bool finished = false;
  int incarnation = 0;
  std::vector<TaskImage> tasks;
  std::vector<char> mono_done;
  std::vector<int> mono_attempts;
  std::vector<double> mono_bytes;
};

class Journal {
 public:
  // Resolves a job id to its execution plan, used to size that job's image
  // on its first folded or replayed record.
  using PlanResolver = std::function<const ExecutionPlan&(JobId)>;

  // Appends one record. kJobFinish retires the job instead: its checkpoint
  // image and any of its not-yet-folded records are dropped on the spot —
  // nothing will ever replay a finished job.
  void Append(const JournalRecord& record);

  // Folds every record appended since the last checkpoint into the per-job
  // checkpoint images and truncates them: replay after a crash restores the
  // images and re-applies only records appended after this point.
  void Checkpoint(double now, const PlanResolver& plan_of);

  // Rebuilds the per-job images a recovery consumes: a copy of the
  // checkpoint images with the post-checkpoint suffix applied on top.
  // Finished jobs are absent.
  std::map<JobId, JobImage> Restore(const PlanResolver& plan_of) const;

  // Records held in memory — the suffix since the last checkpoint (the
  // folded prefix lives in the checkpoint images). This is what a crash
  // charges as replay latency.
  size_t suffix_length() const { return records_.size(); }
  // Total records ever appended (monotonic): the modeled on-disk write
  // volume, unaffected by compaction.
  size_t appended() const { return appended_; }
  // Jobs with a checkpointed image (live at the last checkpoint).
  size_t live_jobs() const { return images_.size(); }
  int checkpoints() const { return checkpoints_; }
  double last_checkpoint_time() const { return last_checkpoint_time_; }

 private:
  std::vector<JournalRecord> records_;  // Suffix since the last checkpoint.
  std::map<JobId, JobImage> images_;    // Folded prefix, live jobs only.
  size_t appended_ = 0;
  int checkpoints_ = 0;
  double last_checkpoint_time_ = -1.0;
};

// Sizes `image` for `plan` on first use and folds `record` into it. Records
// must be applied in append order; a kStartJm with a new incarnation resets
// the image (the previous execution's state is invalidated wholesale).
void ApplyJournalRecord(const JournalRecord& record, const ExecutionPlan& plan,
                        JobImage* image);

}  // namespace ursa

#endif  // SRC_CTRL_JOURNAL_H_
