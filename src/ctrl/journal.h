// Scheduler decision journal + checkpoint model (DESIGN.md section 14).
//
// The scheduler appends one compact record per durable decision (admission,
// job-manager (re)start, placement, monotask completion/failure, task reset,
// task/job completion). A periodic checkpoint marks a prefix of the journal
// as folded into the checkpoint image; recovery replay cost is charged only
// for the suffix written since the last checkpoint. Because this is a
// simulator, the "disk" is an in-memory vector and replay rebuilds per-job
// images (JobImage) that JobManager::RestoreFromImage consumes.
#ifndef SRC_CTRL_JOURNAL_H_
#define SRC_CTRL_JOURNAL_H_

#include <cstdint>
#include <vector>

#include "src/dag/plan.h"
#include "src/dag/types.h"

namespace ursa {

enum class JournalKind : int8_t {
  kAdmit = 0,      // job admitted (reservation committed)
  kStartJm = 1,    // job manager (re)started; gen_or_inc = incarnation
  kPlace = 2,      // task placed; worker, gen_or_inc = generation, x/y = mem
  kMonoDone = 3,   // monotask completed; x = input_bytes
  kMonoFailed = 4, // monotask execution failed (attempt consumed)
  kTaskReset = 5,  // task invalidated (lineage reset / re-placement)
  kTaskDone = 6,   // task completed; time = finish time
  kJobFinish = 7,  // job finished; journal state for it is dead weight
};

struct JournalRecord {
  JournalKind kind = JournalKind::kAdmit;
  JobId job = kInvalidId;
  int32_t id = kInvalidId;  // TaskId or MonotaskId depending on kind.
  WorkerId worker = kInvalidId;
  int32_t gen_or_inc = 0;
  double x = 0.0;  // kPlace: allocated memory; kMonoDone: input bytes.
  double y = 0.0;  // kPlace: actual memory.
  double time = 0.0;
};

// Restored per-task state, rebuilt purely from the journal.
struct TaskImage {
  WorkerId worker = kInvalidId;
  int generation = 0;
  bool done = false;
  double allocated_memory = 0.0;
  double actual_memory = 0.0;
  double place_time = -1.0;
  double finish_time = -1.0;
};

// Restored per-job state. Sized lazily on the first record for the job.
struct JobImage {
  bool admitted = false;
  bool finished = false;
  int incarnation = 0;
  std::vector<TaskImage> tasks;
  std::vector<char> mono_done;
  std::vector<int> mono_attempts;
  std::vector<double> mono_bytes;
};

class Journal {
 public:
  void Append(const JournalRecord& record) { records_.push_back(record); }

  // Folds everything appended so far into the checkpoint image: replay after
  // a crash only pays for records appended after this point.
  void Checkpoint(double now) {
    checkpoint_index_ = records_.size();
    last_checkpoint_time_ = now;
    ++checkpoints_;
  }

  const std::vector<JournalRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }
  size_t suffix_length() const { return records_.size() - checkpoint_index_; }
  int checkpoints() const { return checkpoints_; }
  double last_checkpoint_time() const { return last_checkpoint_time_; }

 private:
  std::vector<JournalRecord> records_;
  size_t checkpoint_index_ = 0;
  int checkpoints_ = 0;
  double last_checkpoint_time_ = -1.0;
};

// Sizes `image` for `plan` on first use and folds `record` into it. Records
// must be applied in append order; a kStartJm with a new incarnation resets
// the image (the previous execution's state is invalidated wholesale).
void ApplyJournalRecord(const JournalRecord& record, const ExecutionPlan& plan,
                        JobImage* image);

}  // namespace ursa

#endif  // SRC_CTRL_JOURNAL_H_
