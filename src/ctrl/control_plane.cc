#include "src/ctrl/control_plane.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/common/logging.h"
#include "src/exec/cluster.h"
#include "src/exec/worker.h"
#include "src/fault/fault_stats.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"

namespace ursa {

ControlPlane::ControlPlane(Simulator* sim, Cluster* cluster,
                           const ControlPlaneConfig& config, FaultStats* stats)
    : sim_(sim), cluster_(cluster), config_(config), stats_(stats), rng_(config.seed) {
  CHECK(config_.loss_prob >= 0.0 && config_.loss_prob < 1.0)
      << "loss_prob must be in [0, 1): a channel that drops everything never "
         "delivers and the retransmission loop cannot terminate";
  CHECK(config_.dup_prob >= 0.0 && config_.dup_prob <= 1.0);
  CHECK(config_.delay_prob >= 0.0 && config_.delay_prob <= 1.0);
  CHECK_GE(config_.base_latency, 0.0);
  CHECK_GE(config_.jitter, 0.0);
  CHECK_GE(config_.delay_extra, 0.0);
  if (config_.enabled) {
    CHECK_GT(config_.ack_timeout, 0.0);
    CHECK_GE(config_.ack_timeout_cap, config_.ack_timeout);
  }
  delivered_.resize(static_cast<size_t>(cluster_->size()));
}

ControlPlane::Fate ControlPlane::DrawFate() {
  Fate fate;
  if (stats_ != nullptr) {
    stats_->RecordMsgSent();
  }
  fate.lost = config_.loss_prob > 0.0 && rng_.Bernoulli(config_.loss_prob);
  if (fate.lost) {
    if (stats_ != nullptr) {
      stats_->RecordMsgLost();
    }
    return fate;
  }
  auto latency = [this] {
    double l = config_.base_latency;
    if (config_.jitter > 0.0) {
      l += rng_.Uniform(0.0, config_.jitter);
    }
    if (config_.delay_prob > 0.0 && rng_.Bernoulli(config_.delay_prob)) {
      if (stats_ != nullptr) {
        stats_->RecordMsgDelayed();
      }
      l += config_.delay_extra;
    }
    return l;
  };
  fate.latency = latency();
  fate.dup = config_.dup_prob > 0.0 && rng_.Bernoulli(config_.dup_prob);
  if (fate.dup) {
    if (stats_ != nullptr) {
      stats_->RecordMsgDuplicated();
    }
    fate.dup_latency = latency();
  }
  return fate;
}

void ControlPlane::Dispatch(WorkerId worker, const MsgKey& key, RunnableMonotask run) {
  if (!config_.enabled) {
    cluster_->worker(worker).Submit(std::move(run));
    return;
  }
  auto p = std::make_shared<PendingDispatch>();
  p->worker = worker;
  p->key = key;
  p->epoch = epoch_;
  p->run = std::move(run);
  SendDispatch(p, config_.ack_timeout);
}

void ControlPlane::SendDispatch(const std::shared_ptr<PendingDispatch>& p,
                                double timeout) {
  const Fate fate = DrawFate();
  if (fate.lost) {
    if (tracer_ != nullptr) {
      tracer_->WorkerEvent(sim_->Now(), TraceEventKind::kMsgDrop, p->worker);
    }
  } else {
    sim_->Schedule(fate.latency, [this, p] { DeliverDispatch(p); });
    if (fate.dup) {
      if (tracer_ != nullptr) {
        tracer_->WorkerEvent(sim_->Now(), TraceEventKind::kMsgDup, p->worker);
      }
      sim_->Schedule(fate.dup_latency, [this, p] { DeliverDispatch(p); });
    }
  }
  // Ack timer: retransmit with capped exponential backoff until the worker
  // acked the delivery or the message was fenced by an epoch bump.
  sim_->Schedule(timeout, [this, p, timeout] {
    if (p->delivered || p->fenced) {
      return;
    }
    if (p->epoch != epoch_) {
      p->fenced = true;
      if (stats_ != nullptr) {
        stats_->RecordMsgFenced();
      }
      return;
    }
    if (stats_ != nullptr) {
      stats_->RecordRetransmit();
    }
    SendDispatch(p, std::min(config_.ack_timeout_cap, timeout * 2.0));
  });
}

void ControlPlane::DeliverDispatch(const std::shared_ptr<PendingDispatch>& p) {
  if (p->epoch != epoch_) {
    // Minted under a dead scheduler incarnation: the resync protocol owns
    // this placement now. Never submit, never ack.
    if (!p->fenced) {
      p->fenced = true;
      if (stats_ != nullptr) {
        stats_->RecordMsgFenced();
      }
      if (tracer_ != nullptr) {
        tracer_->WorkerEvent(sim_->Now(), TraceEventKind::kMsgFenced, p->worker);
      }
    }
    return;
  }
  if (p->delivered) {
    // A duplicate or late retransmission of an already-acked message.
    if (stats_ != nullptr) {
      stats_->RecordDupSuppressed();
    }
    return;
  }
  std::set<MsgKey>& seen = delivered_[static_cast<size_t>(p->worker)];
  if (!seen.insert(p->key).second) {
    // The same execution attempt was already delivered (e.g. the original
    // send of a placement the recovery resync re-dispatched).
    p->delivered = true;
    if (stats_ != nullptr) {
      stats_->RecordDupSuppressed();
    }
    return;
  }
  p->delivered = true;
  cluster_->worker(p->worker).Submit(RunnableMonotask(p->run));
}

void ControlPlane::CompletionToScheduler(const CompletionMsg& msg) {
  CHECK(completion_handler_);
  if (!config_.enabled) {
    completion_handler_(msg);
    return;
  }
  auto p = std::make_shared<PendingNotify>();
  p->worker = msg.worker;
  p->deliver = [this, msg] { completion_handler_(msg); };
  SendNotify(p, config_.ack_timeout);
}

void ControlPlane::NotifyScheduler(WorkerId worker, std::function<void()> deliver) {
  if (!config_.enabled) {
    deliver();
    return;
  }
  auto p = std::make_shared<PendingNotify>();
  p->worker = worker;
  p->deliver = std::move(deliver);
  SendNotify(p, config_.ack_timeout);
}

void ControlPlane::SendNotify(const std::shared_ptr<PendingNotify>& p, double timeout) {
  const Fate fate = DrawFate();
  if (fate.lost) {
    if (tracer_ != nullptr) {
      tracer_->WorkerEvent(sim_->Now(), TraceEventKind::kMsgDrop, p->worker);
    }
  } else {
    sim_->Schedule(fate.latency, [this, p] { DeliverNotify(p); });
    if (fate.dup) {
      if (tracer_ != nullptr) {
        tracer_->WorkerEvent(sim_->Now(), TraceEventKind::kMsgDup, p->worker);
      }
      // Duplicate deliveries reach the handler twice on purpose: endpoint
      // idempotence (done-flag / attempt dedup) is what absorbs them.
      sim_->Schedule(fate.dup_latency, [this, p] { DeliverNotify(p); });
    }
  }
  sim_->Schedule(timeout, [this, p, timeout] {
    if (p->delivered) {
      return;
    }
    if (stats_ != nullptr) {
      stats_->RecordRetransmit();
    }
    SendNotify(p, std::min(config_.ack_timeout_cap, timeout * 2.0));
  });
}

void ControlPlane::DeliverNotify(const std::shared_ptr<PendingNotify>& p) {
  if (down_check_ && down_check_()) {
    // The scheduler is down: no ack, the sender keeps retransmitting and the
    // report re-attaches to whatever incarnation recovers.
    return;
  }
  p->delivered = true;
  p->deliver();
}

void ControlPlane::Heartbeat(WorkerId worker, std::function<void()> deliver) {
  if (!config_.enabled) {
    deliver();
    return;
  }
  const Fate fate = DrawFate();
  if (fate.lost) {
    if (tracer_ != nullptr) {
      tracer_->WorkerEvent(sim_->Now(), TraceEventKind::kMsgDrop, worker);
    }
    return;  // Best-effort: a lost heartbeat is simply silence.
  }
  sim_->Schedule(fate.latency, [this, deliver = std::move(deliver)] {
    if (down_check_ && down_check_()) {
      return;  // A dead scheduler hears nothing.
    }
    deliver();
  });
  // The duplicate fate is deliberately ignored for heartbeats: a duplicated
  // "I am alive" carries no additional information.
}

bool ControlPlane::Delivered(WorkerId worker, const MsgKey& key) const {
  const std::set<MsgKey>& seen = delivered_[static_cast<size_t>(worker)];
  return seen.find(key) != seen.end();
}

void ControlPlane::ForgetWorker(WorkerId worker) {
  delivered_[static_cast<size_t>(worker)].clear();
}

void ControlPlane::ForgetJob(JobId job) {
  for (std::set<MsgKey>& seen : delivered_) {
    MsgKey lo;
    lo.job = job;
    lo.monotask = std::numeric_limits<MonotaskId>::min();
    lo.generation = std::numeric_limits<int>::min();
    lo.attempt = std::numeric_limits<int>::min();
    lo.channel = std::numeric_limits<int>::min();
    MsgKey hi = lo;
    hi.job = job + 1;
    seen.erase(seen.lower_bound(lo), seen.lower_bound(hi));
  }
}

}  // namespace ursa
