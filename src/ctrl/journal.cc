#include "src/ctrl/journal.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace ursa {

void Journal::Append(const JournalRecord& record) {
  ++appended_;
  if (record.kind == JournalKind::kJobFinish) {
    // A finished job is never replayed: scheduler memory keeps the finished
    // flag across crashes and recovery skips such entries, so the job's
    // checkpoint image and any not-yet-folded records are garbage. Dropping
    // them here is the compaction that keeps journal state O(live work).
    images_.erase(record.job);
    records_.erase(std::remove_if(records_.begin(), records_.end(),
                                  [&record](const JournalRecord& r) {
                                    return r.job == record.job;
                                  }),
                   records_.end());
    return;
  }
  records_.push_back(record);
}

void Journal::Checkpoint(double now, const PlanResolver& plan_of) {
  for (const JournalRecord& record : records_) {
    ApplyJournalRecord(record, plan_of(record.job), &images_[record.job]);
  }
  records_.clear();
  ++checkpoints_;
  last_checkpoint_time_ = now;
}

std::map<JobId, JobImage> Journal::Restore(const PlanResolver& plan_of) const {
  std::map<JobId, JobImage> images = images_;
  for (const JournalRecord& record : records_) {
    ApplyJournalRecord(record, plan_of(record.job), &images[record.job]);
  }
  return images;
}

namespace {

void EnsureSized(const ExecutionPlan& plan, JobImage* image) {
  if (image->tasks.size() == plan.tasks().size()) {
    return;
  }
  image->tasks.assign(plan.tasks().size(), TaskImage());
  image->mono_done.assign(plan.monotasks().size(), 0);
  image->mono_attempts.assign(plan.monotasks().size(), 0);
  image->mono_bytes.assign(plan.monotasks().size(), 0.0);
}

}  // namespace

void ApplyJournalRecord(const JournalRecord& record, const ExecutionPlan& plan,
                        JobImage* image) {
  EnsureSized(plan, image);
  switch (record.kind) {
    case JournalKind::kAdmit:
      image->admitted = true;
      break;
    case JournalKind::kStartJm:
      if (record.gen_or_inc != image->incarnation || !image->admitted) {
        // A restart invalidates every decision of the previous incarnation.
        const bool admitted = image->admitted;
        *image = JobImage();
        EnsureSized(plan, image);
        image->admitted = admitted;
        image->incarnation = record.gen_or_inc;
      }
      break;
    case JournalKind::kPlace: {
      TaskImage& task = image->tasks[static_cast<size_t>(record.id)];
      task.worker = record.worker;
      task.generation = record.gen_or_inc;
      task.done = false;
      task.allocated_memory = record.x;
      task.actual_memory = record.y;
      task.place_time = record.time;
      task.finish_time = -1.0;
      break;
    }
    case JournalKind::kMonoDone:
      image->mono_done[static_cast<size_t>(record.id)] = 1;
      image->mono_attempts[static_cast<size_t>(record.id)] = 0;
      image->mono_bytes[static_cast<size_t>(record.id)] = record.x;
      break;
    case JournalKind::kMonoFailed:
      ++image->mono_attempts[static_cast<size_t>(record.id)];
      break;
    case JournalKind::kTaskReset: {
      TaskImage& task = image->tasks[static_cast<size_t>(record.id)];
      task.worker = kInvalidId;
      task.generation = record.gen_or_inc;
      task.done = false;
      task.allocated_memory = 0.0;
      task.actual_memory = 0.0;
      task.place_time = -1.0;
      task.finish_time = -1.0;
      for (MonotaskId m : plan.task(record.id).monotasks) {
        image->mono_done[static_cast<size_t>(m)] = 0;
        image->mono_attempts[static_cast<size_t>(m)] = 0;
        image->mono_bytes[static_cast<size_t>(m)] = 0.0;
      }
      break;
    }
    case JournalKind::kTaskDone: {
      TaskImage& task = image->tasks[static_cast<size_t>(record.id)];
      task.done = true;
      task.worker = record.worker;
      task.finish_time = record.time;
      break;
    }
    case JournalKind::kJobFinish:
      image->finished = true;
      break;
  }
}

}  // namespace ursa
