// Explicit scheduler<->worker message layer with a seeded control-plane
// fault model (DESIGN.md section 14).
//
// When disabled (the default) every send is a synchronous pass-through: no
// simulator events, no RNG draws, so seeded runs are byte-identical to the
// direct-call code paths. When enabled, dispatches, completions/failures and
// heartbeats become simulator-delivered messages with per-message latency,
// and the fault model can drop, duplicate or delay each one. Correctness
// under faults rests on three mechanisms:
//   * acks + capped-backoff retransmission for dispatches and completions
//     (heartbeats are intentionally best-effort);
//   * idempotent delivery: workers dedup dispatches by
//     (job, incarnation, monotask, generation, attempt, channel), and the
//     scheduler-side handlers dedup completions/failures by monotask
//     done-flag / attempt;
//   * epoch fencing: a scheduler crash bumps the epoch, and any dispatch
//     minted under an older epoch is discarded at delivery, so a stale
//     message can never double-charge an OccupancyLedger slot or resurrect
//     a cancelled copy.
#ifndef SRC_CTRL_CONTROL_PLANE_H_
#define SRC_CTRL_CONTROL_PLANE_H_

#include <functional>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "src/common/rng.h"
#include "src/dag/types.h"
#include "src/exec/monotask_queue.h"

namespace ursa {

class Cluster;
class FaultStats;
class Simulator;
class Tracer;

struct ControlPlaneConfig {
  // Off by default: direct synchronous calls, zero events, zero RNG draws.
  bool enabled = false;
  uint64_t seed = 1;
  // Per-message one-way latency: base + Uniform[0, jitter).
  double base_latency = 0.0005;
  double jitter = 0.0005;
  // Fault model, applied per message send.
  double loss_prob = 0.0;
  double dup_prob = 0.0;
  double delay_prob = 0.0;
  double delay_extra = 0.05;  // Added latency when the delay fault fires.
  // Retransmission timer for reliable channels (capped exponential backoff).
  double ack_timeout = 0.05;
  double ack_timeout_cap = 1.0;
  // Scheduler checkpoint/journal cadence; 0 disables journaling entirely
  // (a scheduler crash then degrades to full restarts of all live jobs).
  double checkpoint_interval = 0.0;
  // Modeled recovery costs: fixed restore latency plus per-journal-record
  // replay time for the suffix since the last checkpoint.
  double recovery_base_cost = 0.01;
  double replay_cost_per_record = 1e-5;
};

// Identity of one dispatch message. `generation` and `attempt` make keys
// unique per execution attempt; `channel` separates the primary execution
// (0) from speculative copies (1 + per-job copy sequence).
struct MsgKey {
  JobId job = kInvalidId;
  // Distinguishes executions of the same monotask across full job restarts:
  // a restart resets generations and attempts to zero, so without the
  // incarnation a fresh dispatch would collide with the worker's delivered
  // record of the pre-restart execution and be suppressed as a duplicate.
  int incarnation = 0;
  MonotaskId monotask = kInvalidId;
  int generation = 0;
  int attempt = 0;
  int channel = 0;

  bool operator<(const MsgKey& o) const {
    return std::tie(job, incarnation, monotask, generation, attempt, channel) <
           std::tie(o.job, o.incarnation, o.monotask, o.generation, o.attempt, o.channel);
  }
};

class ControlPlane {
 public:
  // A worker->scheduler completion/failure report, identity-addressed so it
  // can be routed to whichever job-manager incarnation currently owns the
  // job (or fenced if none does).
  struct CompletionMsg {
    JobId job = kInvalidId;
    int incarnation = 0;
    MonotaskId monotask = kInvalidId;
    int generation = 0;
    int attempt = 0;
    bool failed = false;
    WorkerId worker = kInvalidId;
  };

  ControlPlane(Simulator* sim, Cluster* cluster, const ControlPlaneConfig& config,
               FaultStats* stats);

  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  // Reliable scheduler-bound deliveries retry while this returns true.
  void set_down_check(std::function<bool()> down) { down_check_ = std::move(down); }
  void set_completion_handler(std::function<void(const CompletionMsg&)> handler) {
    completion_handler_ = std::move(handler);
  }

  const ControlPlaneConfig& config() const { return config_; }
  int epoch() const { return epoch_; }
  // Fences every dispatch minted under an older epoch (scheduler crash).
  void BumpEpoch() { ++epoch_; }

  // Scheduler -> worker dispatch. Reliable: retransmitted with capped
  // backoff until the worker acks (delivery) or the message is fenced.
  void Dispatch(WorkerId worker, const MsgKey& key, RunnableMonotask run);

  // Worker -> scheduler completion/failure report. Reliable: a report that
  // arrives while the scheduler is down is retried until a live scheduler
  // accepts it, so orphaned monotasks re-attach after recovery.
  void CompletionToScheduler(const CompletionMsg& msg);

  // Worker -> scheduler closure delivery on the same reliable channel (used
  // for speculative-copy callbacks, whose routing state is the copy's
  // liveness token rather than a wire identity).
  void NotifyScheduler(WorkerId worker, std::function<void()> deliver);

  // Worker -> scheduler heartbeat: best-effort, never retransmitted. Lost
  // or late heartbeats are exactly the signal the failure detector consumes.
  void Heartbeat(WorkerId worker, std::function<void()> deliver);

  // True when the worker has acked the dispatch with this key; used by the
  // post-recovery resync pass to decide which placements to re-send.
  bool Delivered(WorkerId worker, const MsgKey& key) const;

  // Drops per-worker dedup state for a finished job.
  void ForgetJob(JobId job);

  // Drops one worker's whole delivered-dispatch set. Called when the worker
  // fails: the set is worker-side state, so a crash wipes it along with the
  // queues, and resync after a scheduler recovery must be able to re-send
  // (and the rejoined worker to re-accept) dispatches the dead process had
  // acked.
  void ForgetWorker(WorkerId worker);

 private:
  struct PendingDispatch {
    WorkerId worker = kInvalidId;
    MsgKey key;
    int epoch = 0;
    RunnableMonotask run;
    bool delivered = false;
    bool fenced = false;
  };
  struct PendingNotify {
    WorkerId worker = kInvalidId;
    std::function<void()> deliver;
    bool delivered = false;
  };

  // Draws the per-send fate from the seeded stream: latency (with jitter and
  // the delay fault folded in), loss and duplication.
  struct Fate {
    bool lost = false;
    bool dup = false;
    double latency = 0.0;
    double dup_latency = 0.0;
  };
  Fate DrawFate();

  void SendDispatch(const std::shared_ptr<PendingDispatch>& p, double timeout);
  void DeliverDispatch(const std::shared_ptr<PendingDispatch>& p);
  void SendNotify(const std::shared_ptr<PendingNotify>& p, double timeout);
  void DeliverNotify(const std::shared_ptr<PendingNotify>& p);

  Simulator* sim_;
  Cluster* cluster_;
  ControlPlaneConfig config_;
  FaultStats* stats_;
  Tracer* tracer_ = nullptr;
  std::function<bool()> down_check_;
  std::function<void(const CompletionMsg&)> completion_handler_;
  Rng rng_;
  int epoch_ = 0;
  // Per-worker delivered-dispatch sets (worker-side state: they survive a
  // scheduler crash, which is what makes resync able to skip live orphans).
  std::vector<std::set<MsgKey>> delivered_;
};

}  // namespace ursa

#endif  // SRC_CTRL_CONTROL_PLANE_H_
