// Flow-level network model with max-min fair bandwidth sharing.
//
// Each node has an uplink and a downlink capacity (bytes/s). A flow moves a
// fixed number of bytes from a source node to a destination node; all active
// flows share the links max-min fairly (progressive filling). Whenever the
// set of active flows changes, remaining bytes are advanced, rates are
// recomputed, and the next flow completion is scheduled on the simulator.
//
// This reproduces the contention behaviour the paper relies on: many
// concurrent shuffles into one receiver split its downlink, slowing all of
// them down and delaying the CPU monotasks that depend on them (section 2,
// "network contention").
//
// Local transfers (src == dst) bypass the links and move at a fixed
// local-copy rate, matching pull-based shuffles that read local partitions.
#ifndef SRC_NET_FLOW_SIMULATOR_H_
#define SRC_NET_FLOW_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/common/time_series.h"
#include "src/sim/simulator.h"

namespace ursa {

using FlowId = uint64_t;
inline constexpr FlowId kInvalidFlowId = 0;

class FlowSimulator {
 public:
  // All nodes start with the given symmetric up/down capacities.
  FlowSimulator(Simulator* sim, int num_nodes, double uplink_bytes_per_sec,
                double downlink_bytes_per_sec);

  // Overrides one node's capacities (e.g. to model heterogeneous clusters).
  void SetNodeBandwidth(int node, double uplink_bytes_per_sec, double downlink_bytes_per_sec);

  // Rate used for src == dst transfers (defaults to 8 GB/s memory copies).
  void set_local_copy_rate(double bytes_per_sec) { local_copy_rate_ = bytes_per_sec; }

  // When false, only downlink capacities constrain flows - the receiver-side
  // contention model of section 4.2.3 ("considers only the network bandwidth
  // at the receiver side"). Defaults to true (full uplink + downlink model).
  void set_enforce_uplinks(bool enforce) {
    enforce_uplinks_ = enforce;
    Reschedule();
  }

  // Starts a flow of `bytes` from `src` to `dst`; `on_complete` fires on the
  // simulator when the last byte arrives. Zero-byte flows complete after an
  // infinitesimal delay (still asynchronously, preserving callback ordering).
  FlowId StartFlow(int src, int dst, double bytes, std::function<void()> on_complete);

  // Cancels an in-flight flow (used on worker failure). The completion
  // callback is dropped. No-op if the flow already completed.
  void CancelFlow(FlowId id);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  size_t active_flows() const { return flows_.size(); }

  // Current aggregate receive rate into `node` (bytes/s).
  double NodeRxRate(int node) const;

  // Historical receive-rate series per node, for utilization figures.
  const StepTracker& rx_tracker(int node) const { return nodes_[node].rx_tracker; }
  double downlink(int node) const { return nodes_[node].down; }
  double uplink(int node) const { return nodes_[node].up; }

  // Total bytes delivered since construction (all flows).
  double total_bytes_delivered() const { return total_delivered_; }

  // Exposed for testing: recomputes fair-share rates immediately.
  void RecomputeForTest() { Reschedule(); }
  double FlowRateForTest(FlowId id) const;

 private:
  struct Flow {
    int src = 0;
    int dst = 0;
    double remaining = 0.0;
    double rate = 0.0;
    std::function<void()> on_complete;
  };
  struct Node {
    double up = 0.0;
    double down = 0.0;
    StepTracker rx_tracker;
  };

  // Advances `remaining` of all flows to the current simulator time.
  void AdvanceProgress();
  // Runs progressive filling over the current flow set.
  void ComputeRates();
  // Advance + compute + schedule the next completion event.
  void Reschedule();
  void OnNextCompletion();
  void UpdateRxTrackers();

  Simulator* sim_;
  std::vector<Node> nodes_;
  // Ordered by FlowId: progressive filling and completion callbacks iterate
  // this map, so its order decides float accumulation and callback firing
  // order (detlint rule `no-unordered-iteration`).
  std::map<FlowId, Flow> flows_;
  FlowId next_id_ = 1;
  double last_progress_time_ = 0.0;
  EventId completion_event_ = kInvalidEventId;
  double local_copy_rate_ = 8e9;
  bool enforce_uplinks_ = true;
  double total_delivered_ = 0.0;
};

}  // namespace ursa

#endif  // SRC_NET_FLOW_SIMULATOR_H_
