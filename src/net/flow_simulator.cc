#include "src/net/flow_simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"

namespace ursa {

namespace {
// Completion times closer together than this are treated as simultaneous to
// avoid event storms from floating-point residue.
constexpr double kTimeEpsilon = 1e-9;
}  // namespace

FlowSimulator::FlowSimulator(Simulator* sim, int num_nodes, double uplink_bytes_per_sec,
                             double downlink_bytes_per_sec)
    : sim_(sim) {
  CHECK_GT(num_nodes, 0);
  CHECK_GT(uplink_bytes_per_sec, 0.0);
  CHECK_GT(downlink_bytes_per_sec, 0.0);
  nodes_.resize(static_cast<size_t>(num_nodes));
  for (auto& node : nodes_) {
    node.up = uplink_bytes_per_sec;
    node.down = downlink_bytes_per_sec;
  }
}

void FlowSimulator::SetNodeBandwidth(int node, double uplink_bytes_per_sec,
                                     double downlink_bytes_per_sec) {
  CHECK_GE(node, 0);
  CHECK_LT(node, num_nodes());
  nodes_[static_cast<size_t>(node)].up = uplink_bytes_per_sec;
  nodes_[static_cast<size_t>(node)].down = downlink_bytes_per_sec;
  Reschedule();
}

FlowId FlowSimulator::StartFlow(int src, int dst, double bytes,
                                std::function<void()> on_complete) {
  CHECK_GE(src, 0);
  CHECK_LT(src, num_nodes());
  CHECK_GE(dst, 0);
  CHECK_LT(dst, num_nodes());
  CHECK_GE(bytes, 0.0);
  const FlowId id = next_id_++;
  Flow flow;
  flow.src = src;
  flow.dst = dst;
  flow.remaining = std::max(bytes, 1.0);  // Zero-byte flows take one "byte".
  flow.on_complete = std::move(on_complete);
  flows_.emplace(id, std::move(flow));
  Reschedule();
  return id;
}

void FlowSimulator::CancelFlow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return;
  }
  AdvanceProgress();
  flows_.erase(it);
  Reschedule();
}

double FlowSimulator::NodeRxRate(int node) const {
  double rate = 0.0;
  for (const auto& [id, flow] : flows_) {
    if (flow.dst == node && flow.src != flow.dst) {
      rate += flow.rate;
    }
  }
  return rate;
}

double FlowSimulator::FlowRateForTest(FlowId id) const {
  auto it = flows_.find(id);
  CHECK(it != flows_.end());
  return it->second.rate;
}

void FlowSimulator::AdvanceProgress() {
  const double now = sim_->Now();
  const double dt = now - last_progress_time_;
  if (dt > 0.0) {
    for (auto& [id, flow] : flows_) {
      const double moved = std::min(flow.remaining, flow.rate * dt);
      flow.remaining -= moved;
      total_delivered_ += moved;
    }
  }
  last_progress_time_ = now;
}

void FlowSimulator::ComputeRates() {
  // Progressive filling: repeatedly find the most-contended link, freeze its
  // flows at the fair share, remove the capacity, iterate.
  const size_t n = nodes_.size();
  std::vector<double> up_cap(n);
  std::vector<double> down_cap(n);
  std::vector<int> up_count(n, 0);
  std::vector<int> down_count(n, 0);
  for (size_t i = 0; i < n; ++i) {
    up_cap[i] = nodes_[i].up;
    down_cap[i] = nodes_[i].down;
  }
  std::vector<std::pair<FlowId, Flow*>> remote;
  for (auto& [id, flow] : flows_) {
    if (flow.src == flow.dst) {
      flow.rate = local_copy_rate_;
      continue;
    }
    flow.rate = 0.0;
    remote.emplace_back(id, &flow);
    ++up_count[static_cast<size_t>(flow.src)];
    ++down_count[static_cast<size_t>(flow.dst)];
  }

  std::vector<bool> frozen(remote.size(), false);
  size_t active = remote.size();
  while (active > 0) {
    // Find the bottleneck link: the link with minimal capacity per unfrozen
    // flow crossing it.
    double min_share = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      if (enforce_uplinks_ && up_count[i] > 0) {
        min_share = std::min(min_share, up_cap[i] / up_count[i]);
      }
      if (down_count[i] > 0) {
        min_share = std::min(min_share, down_cap[i] / down_count[i]);
      }
    }
    CHECK(std::isfinite(min_share));
    // Freeze every unfrozen flow crossing a bottleneck link at min_share.
    bool froze_any = false;
    for (size_t f = 0; f < remote.size(); ++f) {
      if (frozen[f]) {
        continue;
      }
      Flow* flow = remote[f].second;
      const size_t s = static_cast<size_t>(flow->src);
      const size_t d = static_cast<size_t>(flow->dst);
      const double up_share = enforce_uplinks_
                                  ? up_cap[s] / up_count[s]
                                  : std::numeric_limits<double>::infinity();
      const double down_share = down_cap[d] / down_count[d];
      if (std::min(up_share, down_share) <= min_share * (1.0 + 1e-12)) {
        flow->rate = min_share;
        frozen[f] = true;
        froze_any = true;
        up_cap[s] -= min_share;
        down_cap[d] -= min_share;
        --up_count[s];
        --down_count[d];
        --active;
      }
    }
    CHECK(froze_any) << "progressive filling failed to converge";
  }
}

void FlowSimulator::Reschedule() {
  AdvanceProgress();
  if (completion_event_ != kInvalidEventId) {
    sim_->Cancel(completion_event_);
    completion_event_ = kInvalidEventId;
  }
  if (flows_.empty()) {
    UpdateRxTrackers();
    return;
  }
  ComputeRates();
  UpdateRxTrackers();
  double next_dt = std::numeric_limits<double>::infinity();
  for (const auto& [id, flow] : flows_) {
    if (flow.rate > 0.0) {
      next_dt = std::min(next_dt, flow.remaining / flow.rate);
    }
  }
  CHECK(std::isfinite(next_dt)) << "active flows but no positive rate";
  completion_event_ = sim_->Schedule(std::max(next_dt, 0.0), [this] { OnNextCompletion(); });
}

void FlowSimulator::OnNextCompletion() {
  completion_event_ = kInvalidEventId;
  AdvanceProgress();
  // Collect every flow that has (numerically) finished.
  std::vector<std::function<void()>> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    Flow& flow = it->second;
    const double eta = flow.rate > 0.0 ? flow.remaining / flow.rate
                                       : std::numeric_limits<double>::infinity();
    if (flow.remaining <= 1e-6 || eta <= kTimeEpsilon) {
      total_delivered_ += flow.remaining;
      done.push_back(std::move(flow.on_complete));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  Reschedule();
  // Callbacks run after rates are consistent; they may start new flows.
  for (auto& cb : done) {
    if (cb) {
      cb();
    }
  }
}

void FlowSimulator::UpdateRxTrackers() {
  const double now = sim_->Now();
  std::vector<double> rx(nodes_.size(), 0.0);
  for (const auto& [id, flow] : flows_) {
    if (flow.src != flow.dst) {
      rx[static_cast<size_t>(flow.dst)] += flow.rate;
    }
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].rx_tracker.Set(now, rx[i]);
  }
}

}  // namespace ursa
