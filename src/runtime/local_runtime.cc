#include "src/runtime/local_runtime.h"

#include <algorithm>

#include "src/common/logging.h"

namespace ursa {

LocalRuntime::LocalRuntime(const LocalRuntimeOptions& options) : options_(options) {
  if (options_.cpu_threads <= 0) {
    options_.cpu_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  if (options_.shuffle_lanes <= 0) {
    options_.shuffle_lanes = 1;
  }
}

LocalRuntime::~LocalRuntime() = default;

int LocalRuntime::RegisterUdf(Udf udf) {
  udfs_.push_back(std::move(udf));
  return static_cast<int>(udfs_.size() - 1);
}

void LocalRuntime::SetInput(DataId data, std::vector<std::any> partitions) {
  for (size_t p = 0; p < partitions.size(); ++p) {
    store_[Key(data, static_cast<int>(p))] = std::move(partitions[p]);
  }
}

const std::any& LocalRuntime::Partition(DataId data, int partition) const {
  auto it = store_.find(Key(data, partition));
  CHECK(it != store_.end()) << "partition not materialized: data " << data << " partition "
                            << partition;
  return it->second;
}

int LocalRuntime::Partitions(DataId data) const {
  CHECK(plan_ != nullptr) << "Run() first";
  return plan_->dataset_partitions(data);
}

void LocalRuntime::Run(const OpGraph& graph) {
  const ExecutionPlan plan = ExecutionPlan::Build(graph, /*seed=*/1);
  plan_ = &plan;
  graph_ = &graph;
  monos_.assign(plan.monotasks().size(), MonoState{});
  tasks_.assign(plan.tasks().size(), TaskState{});
  stage_remaining_.assign(plan.stages().size(), 0);
  for (const StageSpec& stage : plan.stages()) {
    stage_remaining_[static_cast<size_t>(stage.id)] = stage.num_tasks;
  }
  for (const MonotaskSpec& mt : plan.monotasks()) {
    monos_[static_cast<size_t>(mt.id)].remaining_deps =
        static_cast<int>(mt.intask_deps.size());
    if (mt.type == ResourceType::kCpu) {
      for (OpId member : plan.cop(mt.cop).members) {
        CHECK_GE(graph.op(member).udf, 0)
            << "CPU op " << graph.op(member).name << " has no UDF registered";
      }
    }
  }
  for (const TaskSpec& task : plan.tasks()) {
    TaskState& ts = tasks_[static_cast<size_t>(task.id)];
    ts.remaining_async = static_cast<int>(task.async_parents.size());
    ts.remaining_sync = static_cast<int>(task.sync_parent_stages.size());
    ts.remaining_monotasks = static_cast<int>(task.monotasks.size());
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = false;
    outstanding_ = static_cast<int>(plan.monotasks().size());
    for (const TaskSpec& task : plan.tasks()) {
      const TaskState& ts = tasks_[static_cast<size_t>(task.id)];
      if (ts.remaining_async == 0 && ts.remaining_sync == 0) {
        for (MonotaskId m : task.monotasks) {
          if (monos_[static_cast<size_t>(m)].remaining_deps == 0) {
            queues_[static_cast<size_t>(plan.monotask(m).type)].push_back(m);
          }
        }
      }
    }
  }

  // Spin up the per-resource lanes.
  for (int i = 0; i < options_.cpu_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(ResourceType::kCpu); });
  }
  for (int i = 0; i < options_.shuffle_lanes; ++i) {
    threads_.emplace_back([this] { WorkerLoop(ResourceType::kNetwork); });
  }
  threads_.emplace_back([this] { WorkerLoop(ResourceType::kDisk); });
  cv_.notify_all();

  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return outstanding_ == 0; });
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
  threads_.clear();
  plan_owned_ = std::make_unique<ExecutionPlan>(plan);
  plan_ = plan_owned_.get();
  graph_ = nullptr;
}

void LocalRuntime::WorkerLoop(ResourceType lane) {
  const size_t q = static_cast<size_t>(lane);
  while (true) {
    MonotaskId id = kInvalidId;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this, q] { return shutdown_ || !queues_[q].empty(); });
      if (shutdown_ && queues_[q].empty()) {
        return;
      }
      id = queues_[q].front();
      queues_[q].pop_front();
    }
    ExecuteMonotask(id);
    OnMonotaskDone(id);
  }
}

void LocalRuntime::ExecuteMonotask(MonotaskId id) {
  const MonotaskSpec& mt = plan_->monotask(id);
  const CollapsedOp& cop = plan_->cop(mt.cop);
  const OpGraph& graph = *graph_;
  switch (mt.type) {
    case ResourceType::kCpu: {
      // Run each member op's UDF in chain order; intermediates land in the
      // store like any other partition.
      for (OpId member : cop.members) {
        const OpDef& op = graph.op(member);
        UdfInputs inputs;
        {
          std::lock_guard<std::mutex> lock(mu_);
          for (DataId d : op.reads) {
            auto it = store_.find(Key(d, mt.index));
            CHECK(it != store_.end())
                << "op " << op.name << " missing input partition of data " << d;
            inputs.push_back(&it->second);
          }
        }
        std::vector<std::any> outputs = udfs_[static_cast<size_t>(op.udf)](inputs);
        CHECK_EQ(outputs.size(), op.creates.size())
            << "op " << op.name << " returned wrong output count";
        std::lock_guard<std::mutex> lock(mu_);
        for (size_t i = 0; i < outputs.size(); ++i) {
          store_[Key(op.creates[i], mt.index)] = std::move(outputs[i]);
        }
      }
      break;
    }
    case ResourceType::kNetwork: {
      CHECK_EQ(cop.reads.size(), cop.creates.size())
          << "network op " << cop.name << " must map reads to creates 1:1";
      for (size_t r = 0; r < cop.reads.size(); ++r) {
        const DataId src = cop.reads[r];
        const DataId dst = cop.creates[r];
        std::any output;
        if (cop.read_modes[r] == ReadMode::kGatherSlices) {
          // Collect bucket mt.index of every upstream partition.
          std::vector<std::any> slices;
          const int partitions = plan_->dataset_partitions(src);
          std::lock_guard<std::mutex> lock(mu_);
          for (int p = 0; p < partitions; ++p) {
            auto it = store_.find(Key(src, p));
            CHECK(it != store_.end());
            const auto* buckets = std::any_cast<std::vector<std::any>>(&it->second);
            CHECK(buckets != nullptr)
                << "shuffle input of " << cop.name
                << " must be std::vector<std::any> buckets (one per output partition)";
            CHECK_LT(static_cast<size_t>(mt.index), buckets->size());
            slices.push_back((*buckets)[static_cast<size_t>(mt.index)]);
          }
          output = std::move(slices);
        } else {
          std::lock_guard<std::mutex> lock(mu_);
          auto it = store_.find(Key(src, mt.index));
          CHECK(it != store_.end());
          output = it->second;  // Share / copy the partition.
        }
        std::lock_guard<std::mutex> lock(mu_);
        store_[Key(dst, mt.index)] = std::move(output);
      }
      break;
    }
    case ResourceType::kDisk: {
      // Pass-through persistence lane: copy read partitions to any created
      // datasets (a real deployment would serialize to files here).
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t r = 0; r < cop.reads.size() && r < cop.creates.size(); ++r) {
        auto it = store_.find(Key(cop.reads[r], mt.index));
        CHECK(it != store_.end());
        store_[Key(cop.creates[r], mt.index)] = it->second;
      }
      break;
    }
  }
}

void LocalRuntime::OnMonotaskDone(MonotaskId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const MonotaskSpec& mt = plan_->monotask(id);
  ++executed_[static_cast<size_t>(mt.type)];
  for (MonotaskId dep : mt.intask_dependents) {
    if (--monos_[static_cast<size_t>(dep)].remaining_deps == 0) {
      Enqueue(dep);
    }
  }
  TaskState& ts = tasks_[static_cast<size_t>(mt.task)];
  if (--ts.remaining_monotasks == 0) {
    const TaskSpec& task = plan_->task(mt.task);
    for (TaskId child : task.async_children) {
      TaskState& cs = tasks_[static_cast<size_t>(child)];
      if (--cs.remaining_async == 0 && cs.remaining_sync == 0) {
        MarkTaskReady(child);
      }
    }
    if (--stage_remaining_[static_cast<size_t>(task.stage)] == 0) {
      for (StageId cs_id : plan_->stage(task.stage).sync_child_stages) {
        for (TaskId child : plan_->stage(cs_id).tasks) {
          TaskState& cs = tasks_[static_cast<size_t>(child)];
          if (--cs.remaining_sync == 0 && cs.remaining_async == 0) {
            MarkTaskReady(child);
          }
        }
      }
    }
  }
  --outstanding_;
  cv_.notify_all();
}

void LocalRuntime::MarkTaskReady(TaskId id) {
  for (MonotaskId m : plan_->task(id).monotasks) {
    if (monos_[static_cast<size_t>(m)].remaining_deps == 0) {
      Enqueue(m);
    }
  }
}

void LocalRuntime::Enqueue(MonotaskId id) {
  queues_[static_cast<size_t>(plan_->monotask(id).type)].push_back(id);
  cv_.notify_all();
}

}  // namespace ursa
