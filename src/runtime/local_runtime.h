// LocalRuntime: a real (non-simulated) execution engine for OpGraphs.
//
// This is the execution-layer counterpart of the paper's job processes
// (section 4.1.4) for a single machine: monotasks carry real C++ UDFs and
// real data, and are executed from per-resource queues - a CPU thread pool
// sized to the core count, a bounded "network" (shuffle/copy) lane and a
// disk lane - so the quickstart examples run genuine computations through
// the same plan compiler (ExecutionPlan) the simulator uses.
//
// Data model: a partition is a std::any. UDFs receive one input partition
// per dataset the op Reads and return one output partition per dataset the
// op Creates. A sync (shuffle) network op delivers, for output partition j,
// the vector of the j-th *buckets* of every upstream partition: upstream CPU
// ops that feed a shuffle must produce std::vector<std::any> partitions
// (one bucket per output partition), which is what the high-level API's
// ReduceByKey serializer does (mirroring the paper's example).
#ifndef SRC_RUNTIME_LOCAL_RUNTIME_H_
#define SRC_RUNTIME_LOCAL_RUNTIME_H_

#include <any>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/dag/plan.h"

namespace ursa {

// One input partition per Read dataset (in op Read order).
using UdfInputs = std::vector<const std::any*>;
// One output partition per Created dataset (in op Create order).
using Udf = std::function<std::vector<std::any>(const UdfInputs&)>;

struct LocalRuntimeOptions {
  int cpu_threads = 0;  // 0 = hardware concurrency.
  int shuffle_lanes = 2;
};

class LocalRuntime {
 public:
  explicit LocalRuntime(const LocalRuntimeOptions& options = {});
  ~LocalRuntime();

  LocalRuntime(const LocalRuntime&) = delete;
  LocalRuntime& operator=(const LocalRuntime&) = delete;

  // Registers a UDF; the returned index is what OpHandle::SetUdf takes.
  int RegisterUdf(Udf udf);

  // Provides the partitions of an external dataset.
  void SetInput(DataId data, std::vector<std::any> partitions);

  // Compiles and executes the graph to completion (blocking). CHECK-fails if
  // any CPU op lacks a UDF.
  void Run(const OpGraph& graph);

  // Result access after Run().
  const std::any& Partition(DataId data, int partition) const;
  int Partitions(DataId data) const;

  // Execution statistics.
  int64_t monotasks_executed(ResourceType type) const {
    return executed_[static_cast<size_t>(type)];
  }

 private:
  struct MonoState {
    int remaining_deps = 0;
  };
  struct TaskState {
    int remaining_async = 0;
    int remaining_sync = 0;
    int remaining_monotasks = 0;
  };

  void ExecuteMonotask(MonotaskId id);
  void OnMonotaskDone(MonotaskId id);
  void MarkTaskReady(TaskId id);
  void Enqueue(MonotaskId id);
  void WorkerLoop(ResourceType lane);
  uint64_t Key(DataId data, int partition) const {
    return (static_cast<uint64_t>(static_cast<uint32_t>(data)) << 32) |
           static_cast<uint64_t>(static_cast<uint32_t>(partition));
  }

  LocalRuntimeOptions options_;
  std::vector<Udf> udfs_;

  // Populated per Run().
  const ExecutionPlan* plan_ = nullptr;
  const OpGraph* graph_ = nullptr;
  std::unique_ptr<ExecutionPlan> plan_owned_;  // Keeps results queryable.
  std::vector<MonoState> monos_;
  std::vector<TaskState> tasks_;
  std::vector<int> stage_remaining_;
  std::unordered_map<uint64_t, std::any> store_;
  int64_t executed_[kNumMonotaskResources] = {0, 0, 0};

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<MonotaskId> queues_[kNumMonotaskResources];
  int outstanding_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace ursa

#endif  // SRC_RUNTIME_LOCAL_RUNTIME_H_
