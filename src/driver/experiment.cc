#include "src/driver/experiment.h"

#include <algorithm>
#include <functional>
#include <memory>

#include "src/common/logging.h"
#include "src/common/wallclock.h"
#include "src/obs/trace.h"

namespace ursa {

namespace {

// Collects per-job, per-stage task completion times from Ursa job managers.
std::vector<std::vector<std::vector<double>>> UrsaStageTimes(const UrsaScheduler& scheduler,
                                                             int num_jobs) {
  std::vector<std::vector<std::vector<double>>> all;
  all.reserve(static_cast<size_t>(num_jobs));
  for (int j = 0; j < num_jobs; ++j) {
    const JobManager* jm = scheduler.job_manager(static_cast<JobId>(j));
    std::vector<std::vector<double>> stages;
    if (jm != nullptr) {
      const ExecutionPlan& plan = jm->job().plan;
      stages.resize(plan.stages().size());
      for (const TaskSpec& task : plan.tasks()) {
        const double t = jm->task_timing(task.id).finish_time;
        if (t >= 0.0) {
          stages[static_cast<size_t>(task.stage)].push_back(t);
        }
      }
    }
    all.push_back(std::move(stages));
  }
  return all;
}

}  // namespace

ExperimentResult RunExperiment(const Workload& workload, const ExperimentConfig& config,
                               const std::string& scheme_name) {
  Simulator sim(config.queue_kind);
  Cluster cluster(&sim, config.cluster);
  ExperimentResult result;
  result.scheme = scheme_name;

  std::unique_ptr<UrsaScheduler> ursa_sched;
  std::unique_ptr<ExecutorModelScheduler> exec_sched;
  if (config.kind == SchedulerKind::kUrsa) {
    ursa_sched = std::make_unique<UrsaScheduler>(&sim, &cluster, config.ursa);
  } else {
    exec_sched = std::make_unique<ExecutorModelScheduler>(&sim, &cluster, config.executor,
                                                          config.cm);
  }

  std::shared_ptr<Tracer> tracer;
  if (config.trace || !config.trace_out.empty()) {
    TracerConfig tc;
    tc.capacity = config.trace_capacity;
    tc.sample = config.trace_sample;
    tracer = std::make_shared<Tracer>(tc);
    cluster.set_tracer(tracer.get());
    if (ursa_sched != nullptr) {
      ursa_sched->set_tracer(tracer.get());
    }
  }

  std::unique_ptr<FaultInjector> injector;
  if (!config.fault_plan.empty()) {
    if (ursa_sched != nullptr) {
      injector = std::make_unique<FaultInjector>(&sim, &cluster, config.fault_plan,
                                                 ursa_sched->mutable_fault_stats());
      injector->set_scheduler_crash_handler([sp = ursa_sched.get()](double downtime) {
        sp->InjectSchedulerCrash(downtime);
      });
      injector->Arm();
    } else {
      LOG(Warning) << "fault plan ignored: the executor model has no recovery path";
    }
  }

  std::unique_ptr<OpenLoopSource> source;
  std::function<void()> arrive;
  int submitted = 0;
  if (config.open_loop.enabled) {
    // Open-loop serving: arrivals are chained — each one schedules the next
    // gap seconds later, with the gap stretched by the scheduler's current
    // throttle factor (client backoff under backpressure).
    source = std::make_unique<OpenLoopSource>(config.open_loop);
    arrive = [&] {
      if (source->Exhausted(sim.Now())) {
        return;
      }
      auto job = Job::Create(static_cast<JobId>(submitted), source->NextJob());
      ++submitted;
      if (ursa_sched != nullptr) {
        ursa_sched->SubmitJob(std::move(job));
      } else {
        exec_sched->SubmitJob(std::move(job));
      }
      const double throttle =
          ursa_sched != nullptr ? ursa_sched->admission_throttle_factor() : 1.0;
      sim.Schedule(source->NextGap() * throttle, arrive);
    };
    sim.ScheduleAt(0.0, arrive);
  } else {
    // Closed batch: jobs are compiled and submitted at their fixed times.
    submitted = static_cast<int>(workload.jobs.size());
    for (size_t i = 0; i < workload.jobs.size(); ++i) {
      const WorkloadJob& wj = workload.jobs[i];
      sim.ScheduleAt(wj.submit_time, [&, i] {
        auto job = Job::Create(static_cast<JobId>(i), workload.jobs[i].spec);
        if (ursa_sched != nullptr) {
          ursa_sched->SubmitJob(std::move(job));
        } else {
          exec_sched->SubmitJob(std::move(job));
        }
      });
    }
  }

  const WallTimer run_timer;
  result.events_fired = sim.Run(config.time_limit);
  result.wall_seconds = run_timer.ElapsedMicros() / 1e6;
  const int finished = ursa_sched != nullptr ? ursa_sched->finished_jobs()
                                             : exec_sched->finished_jobs();
  const int shed = ursa_sched != nullptr ? ursa_sched->shed_jobs() : 0;
  // Every submitted job must have resolved: completed, or shed by admission
  // control (open-loop runs under overload).
  CHECK_EQ(finished + shed, submitted)
      << "scheme " << scheme_name << " did not finish workload " << workload.name
      << " within the time limit (likely a scheduling deadlock)";

  result.records = ursa_sched != nullptr ? ursa_sched->job_records()
                                         : exec_sched->job_records();
  result.submitted = submitted;
  double last_finish = 0.0;
  for (const JobRecord& record : result.records) {
    last_finish = std::max(last_finish, record.finish_time);
  }
  if (config.open_loop.enabled) {
    // The serving horizon includes trailing sheds/arrivals after the last
    // completion; guard against a run where every job was shed.
    last_finish = std::max({last_finish, sim.Now(), 1e-9});
  }
  result.efficiency = MetricsCollector::Compute(cluster, result.records, 0.0, last_finish);
  result.tenants = MetricsCollector::ComputeTenantReport(result.records, last_finish);
  if (ursa_sched != nullptr) {
    result.admission = ursa_sched->admission_counters();
    result.scheduler_counters = ursa_sched->scheduler_counters();
  }
  if (config.sample_step > 0.0) {
    result.series = MetricsCollector::Sample(cluster, 0.0, last_finish, config.sample_step);
  }

  // Straggler analysis.
  std::vector<double> jcts;
  jcts.reserve(result.records.size());
  for (const JobRecord& record : result.records) {
    jcts.push_back(record.jct());
  }
  if (ursa_sched != nullptr) {
    result.straggler_ratio = MetricsCollector::StragglerTimeRatio(
        UrsaStageTimes(*ursa_sched, static_cast<int>(result.records.size())), jcts);
    result.faults = ursa_sched->fault_stats();
  } else {
    auto times = exec_sched->stage_task_times();
    times.resize(result.records.size());
    result.straggler_ratio = MetricsCollector::StragglerTimeRatio(times, jcts);
  }
  if (tracer != nullptr && !config.trace_out.empty()) {
    tracer->WriteChromeTraceFile(config.trace_out);
  }
  result.trace = std::move(tracer);
  return result;
}

ExperimentConfig UrsaEjfConfig() {
  ExperimentConfig config;
  config.kind = SchedulerKind::kUrsa;
  config.ursa.policy = OrderingPolicy::kEjf;
  return config;
}

ExperimentConfig UrsaSrjfConfig() {
  ExperimentConfig config;
  config.kind = SchedulerKind::kUrsa;
  config.ursa.policy = OrderingPolicy::kSrjf;
  return config;
}

ExperimentConfig UrsaGrapheneConfig() {
  ExperimentConfig config;
  config.kind = SchedulerKind::kUrsa;
  config.ursa.policy = OrderingPolicy::kGraphene;
  return config;
}

ExperimentConfig UrsaOrderingConfig(OrderingPolicy policy) {
  ExperimentConfig config;
  config.kind = SchedulerKind::kUrsa;
  config.ursa.policy = policy;
  return config;
}

ExperimentConfig SparkLikeConfig() {
  ExperimentConfig config;
  config.kind = SchedulerKind::kExecutorModel;
  config.executor.mode = ExecutorMode::kTaskSlots;
  config.executor.executor_cores = 4;
  config.executor.executor_memory_bytes = 8.0 * 1024 * 1024 * 1024;
  config.executor.dynamic_allocation = true;
  config.executor.idle_timeout = 2.0;
  config.executor.task_launch_overhead = 0.02;
  config.executor.job_startup_delay = 1.0;
  return config;
}

ExperimentConfig TezLikeConfig() {
  ExperimentConfig config;
  config.kind = SchedulerKind::kExecutorModel;
  config.executor.mode = ExecutorMode::kTaskSlots;
  config.executor.executor_cores = 2;
  config.executor.executor_memory_bytes = 6.0 * 1024 * 1024 * 1024;
  config.executor.dynamic_allocation = false;  // Container reuse until job end.
  config.executor.task_launch_overhead = 0.15;
  config.executor.job_startup_delay = 1.5;
  return config;
}

ExperimentConfig MonoSparkConfig() {
  ExperimentConfig config;
  config.kind = SchedulerKind::kExecutorModel;
  config.executor.mode = ExecutorMode::kMonotaskQueues;
  config.executor.executor_cores = 4;
  config.executor.executor_memory_bytes = 8.0 * 1024 * 1024 * 1024;
  config.executor.dynamic_allocation = true;
  config.executor.idle_timeout = 2.0;
  config.executor.task_launch_overhead = 0.0;  // Monotasks queue directly.
  config.executor.job_startup_delay = 1.0;
  return config;
}

}  // namespace ursa
