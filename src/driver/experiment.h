// Experiment harness: runs a Workload on a simulated cluster under one of
// the scheduling schemes from section 5 and returns the paper's metrics.
// Every bench binary and cluster example goes through this entry point.
//
// Schemes:
//   Ursa(EJF/SRJF, Algorithm1)  - the paper's system (section 4)
//   Ursa + Tetris/Tetris2/Capacity - alternative placement (section 5.1.2)
//   Y+S  - YARN + Spark-like executor model
//   Y+T  - YARN + Tez-like executor model (container reuse, no dyn. alloc)
//   Y+U  - YARN + Ursa execution layer in containers (MonoSpark simulation)
#ifndef SRC_DRIVER_EXPERIMENT_H_
#define SRC_DRIVER_EXPERIMENT_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/executor_runtime.h"
#include "src/exec/cluster.h"
#include "src/fault/fault_injector.h"
#include "src/metrics/metrics.h"
#include "src/scheduler/ursa_scheduler.h"
#include "src/sim/event_queue.h"
#include "src/workloads/openloop.h"
#include "src/workloads/workload.h"

namespace ursa {

class Tracer;

enum class SchedulerKind : int {
  kUrsa = 0,
  kExecutorModel = 1,
};

struct ExperimentConfig {
  ClusterConfig cluster;
  SchedulerKind kind = SchedulerKind::kUrsa;
  UrsaSchedulerConfig ursa;
  ExecutorModelConfig executor;
  ContainerManagerConfig cm;
  // Safety cap on simulated time; the run aborts (CHECK) if jobs are still
  // unfinished at this point, which indicates a scheduling deadlock.
  double time_limit = 500000.0;
  // When > 0, the result carries a cluster utilization series at this step.
  double sample_step = 0.0;
  // Chaos plan injected during the run (Ursa scheduler only; the executor
  // model has no recovery path and ignores it with a warning).
  FaultPlan fault_plan;
  // --- Tracing (src/obs, DESIGN.md section 8). ---
  // Tracing activates when `trace` is true or `trace_out` is non-empty; the
  // Tracer is returned in ExperimentResult and, when `trace_out` is set, the
  // Chrome-trace JSON is written there after the run.
  bool trace = false;
  std::string trace_out;
  // Trace every Nth monotask (1 = all); task/tick/fault events always trace.
  int trace_sample = 1;
  // Event ring capacity; the oldest events are dropped past this.
  size_t trace_capacity = size_t{1} << 20;
  // Backing event-queue implementation for the simulator. Both kinds obey
  // the same (when, id) ordering contract, so this never changes a seeded
  // run's results — only its wall-clock cost (DESIGN.md section 12).
  EventQueueKind queue_kind = EventQueueKind::kBinaryHeap;
  // --- Open-loop serving (DESIGN.md section 11). ---
  // When enabled, the `workload` argument of RunExperiment is ignored and
  // jobs arrive continuously from an OpenLoopSource; inter-arrival gaps are
  // stretched by the scheduler's backpressure throttle factor. A run ends
  // when every arrived job resolved (completed or was shed).
  OpenLoopConfig open_loop;
};

struct ExperimentResult {
  std::string scheme;
  EfficiencyReport efficiency;
  std::vector<JobRecord> records;
  MetricsCollector::UtilizationSeries series;
  // Straggler-time-to-JCT ratio (section 5.1.2), percent.
  double straggler_ratio = 0.0;
  // Fault injection / detection / recovery counters (Ursa scheduler only).
  FaultCounters faults;
  // Admission/backpressure counters (zero when admission control is off).
  AdmissionCounters admission;
  // Per-tenant JCT/SLO/goodput breakdown and the Jain fairness index.
  MetricsCollector::TenantReport tenants;
  // Jobs offered to the scheduler (== records.size()); in open-loop mode
  // this is the arrival count, of which `admission.shed` never ran.
  int submitted = 0;
  // Simulator events fired during the run and the host wall-clock seconds
  // the run took — the throughput numerators/denominators for bench_scale.
  uint64_t events_fired = 0;
  double wall_seconds = 0.0;
  // Hot-path counters from the Ursa scheduler (zero for the executor model).
  UrsaScheduler::SchedulerCounters scheduler_counters;
  // Non-null when tracing was enabled (config.trace / config.trace_out).
  std::shared_ptr<Tracer> trace;
  double makespan() const { return efficiency.makespan; }
  double avg_jct() const { return efficiency.avg_jct; }
};

ExperimentResult RunExperiment(const Workload& workload, const ExperimentConfig& config,
                               const std::string& scheme_name);

// Preset scheme configurations used across benches.
ExperimentConfig UrsaEjfConfig();
ExperimentConfig UrsaSrjfConfig();
ExperimentConfig UrsaGrapheneConfig();
// Ursa under an arbitrary registered ordering policy (registry-driven
// benches; DESIGN.md section 13).
ExperimentConfig UrsaOrderingConfig(OrderingPolicy policy);
ExperimentConfig SparkLikeConfig();   // Y+S
ExperimentConfig TezLikeConfig();     // Y+T
ExperimentConfig MonoSparkConfig();   // Y+U

}  // namespace ursa

#endif  // SRC_DRIVER_EXPERIMENT_H_
