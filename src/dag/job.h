// Job specification and the compiled job handed to the execution layer.
#ifndef SRC_DAG_JOB_H_
#define SRC_DAG_JOB_H_

#include <memory>
#include <string>

#include "src/dag/opgraph.h"
#include "src/dag/plan.h"
#include "src/dag/types.h"

namespace ursa {

// What a user submits: a dataflow plus the coarse resource declarations that
// existing schedulers rely on (the paper's M(j) memory estimate).
struct JobSpec {
  std::string name;
  OpGraph graph;
  // User-declared memory estimate M(j) in bytes (section 4.2.1). Users are
  // conservative, so this is typically well above the true peak usage.
  double declared_memory_bytes = 0.0;
  // True memory consumed per input byte while a task runs, used to account
  // actual utilization (UE_mem < 1 comes from the gap to the estimates).
  double true_m2i = 1.0;
  // Estimator default memory-to-input ratio for ops without an explicit m2i.
  double default_m2i = 2.0;
  // Deterministic seed for skew weights and any per-job randomness.
  uint64_t seed = 1;
  // Workload class label used in reports ("tpch", "ml", "graph", ...).
  std::string klass;
  // --- Multi-tenant open-loop serving (DESIGN.md section 11). ---
  // Tenant the job belongs to ("" = single-tenant workload).
  std::string tenant;
  // Priority tier for admission control and shedding; 0 is the highest.
  int priority_tier = 0;
  // Completion deadline in seconds from submission (0 = no SLO declared;
  // admission control then applies its configured default).
  double slo_seconds = 0.0;
};

// A submitted job: the spec compiled into the monotask execution plan.
struct Job {
  JobId id = kInvalidId;
  JobSpec spec;
  ExecutionPlan plan;
  double submit_time = 0.0;

  static std::unique_ptr<Job> Create(JobId id, JobSpec spec);
};

}  // namespace ursa

#endif  // SRC_DAG_JOB_H_
