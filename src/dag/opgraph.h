// The paper's dataflow primitives (section 4.1.1).
//
// A job is an OpGraph of Datasets (distributed, partitioned) and Ops, where
// every Op uses a single resource type (CPU, network, or disk). Dependencies
// between Ops are sync (barrier; many-to-many monotask deps) or async
// (per-partition; one-to-one monotask deps). Example (paper's reduceByKey):
//
//   OpGraph dag;
//   DataId msg = dag.CreateData(in_parts);
//   DataId shuffled = dag.CreateData(out_parts);
//   OpHandle ser = dag.CreateOp(ResourceType::kCpu).Read(input).Create(msg);
//   OpHandle shuffle = dag.CreateOp(ResourceType::kNetwork).Read(msg).Create(shuffled);
//   ser.To(shuffle, DepKind::kSync);
//
// Because the cluster experiments run on a simulator, each Op additionally
// carries an OpCostModel describing how much CPU work it does per input byte
// and how large its output is; the LocalRuntime path instead attaches real
// UDFs through `SetUdf` (see src/runtime).
#ifndef SRC_DAG_OPGRAPH_H_
#define SRC_DAG_OPGRAPH_H_

#include <string>
#include <vector>

#include "src/dag/types.h"

namespace ursa {

// Cost/shape model of an Op for simulated execution.
struct OpCostModel {
  // CPU work per input byte, in byte-equivalents (a worker core processes
  // cpu_byte_rate byte-equivalents per second). Ignored for network/disk ops.
  double cpu_complexity = 1.0;
  // Fixed per-monotask CPU work in byte-equivalents (models constant
  // deserialization / setup costs that dominate tiny partitions).
  double fixed_cpu_work = 0.0;
  // Output bytes produced per input byte.
  double output_selectivity = 1.0;
  // Skew of output partition sizes: sizes are multiplied by a factor in
  // [1/skew, skew] (normalized so the total is preserved). 1 = uniform.
  double output_skew = 1.0;
};

struct DatasetDef {
  DataId id = kInvalidId;
  int partitions = 0;
  std::string name;
  // For external (job input) datasets: per-partition sizes in bytes.
  // Empty for datasets produced by Ops.
  std::vector<double> external_sizes;
  OpId creator = kInvalidId;  // Op that Creates this dataset, if any.
};

struct OpDef {
  OpId id = kInvalidId;
  ResourceType type = ResourceType::kCpu;
  std::string name;
  std::vector<DataId> reads;
  std::vector<DataId> creates;
  std::vector<DataId> updates;
  OpCostModel cost;
  int parallelism = 0;  // 0 = derive from created/read dataset partitions.
  // Index into the runtime UDF registry (LocalRuntime); -1 = none.
  int udf = -1;
  // Memory-to-input ratio for tasks whose CPU monotask comes from this op
  // (paper section 4.2.1). <= 0 means "use the job default".
  double m2i = 0.0;
};

struct DepDef {
  OpId from = kInvalidId;
  OpId to = kInvalidId;
  DepKind kind = DepKind::kAsync;
};

class OpGraph;

// Chainable builder referencing an Op inside an OpGraph (mirrors the paper's
// Op interface: Read / Create / Update / SetUDF / To).
class OpHandle {
 public:
  OpHandle() = default;
  OpHandle(OpGraph* graph, OpId id) : graph_(graph), id_(id) {}

  OpHandle& Read(DataId data);
  OpHandle& Create(DataId data);
  OpHandle& Update(DataId data);
  OpHandle& SetCost(const OpCostModel& cost);
  OpHandle& SetParallelism(int parallelism);
  OpHandle& SetUdf(int udf_index);
  OpHandle& SetM2i(double m2i);
  OpHandle& SetName(const std::string& name);
  // Adds a dependency edge this -> downstream.
  OpHandle& To(const OpHandle& downstream, DepKind kind);

  OpId id() const { return id_; }
  bool valid() const { return graph_ != nullptr && id_ != kInvalidId; }

 private:
  OpGraph* graph_ = nullptr;
  OpId id_ = kInvalidId;
};

class OpGraph {
 public:
  // Creates a dataset with `partitions` partitions.
  DataId CreateData(int partitions, const std::string& name = "");

  // Creates a dataset representing external job input with known sizes
  // (e.g. files in the distributed filesystem; paper section 4.2.1 obtains
  // these from HDFS metadata).
  DataId CreateExternalData(std::vector<double> partition_bytes, const std::string& name = "");

  // Creates an Op that uses a single resource type.
  OpHandle CreateOp(ResourceType type, const std::string& name = "");

  void AddDep(OpId from, OpId to, DepKind kind);

  // Structure checks; CHECK-fails with a diagnostic on invalid graphs:
  // acyclicity, every non-external dataset has exactly one creator, sync
  // dependencies target network ops only, async endpoints have matching
  // parallelism.
  void Validate() const;

  // Effective parallelism of an op (explicit, or derived from its first
  // created dataset, falling back to its first read dataset).
  int OpParallelism(OpId op) const;

  const std::vector<DatasetDef>& datasets() const { return datasets_; }
  std::vector<DatasetDef>& mutable_datasets() { return datasets_; }
  const std::vector<OpDef>& ops() const { return ops_; }
  const std::vector<DepDef>& deps() const { return deps_; }
  DatasetDef& dataset(DataId id);
  const DatasetDef& dataset(DataId id) const;
  OpDef& op(OpId id);
  const OpDef& op(OpId id) const;

  // Upstream ops with an edge into `op`, with the dep kind.
  std::vector<std::pair<OpId, DepKind>> Parents(OpId op) const;
  std::vector<std::pair<OpId, DepKind>> Children(OpId op) const;

  // Total bytes of all external datasets (the job input size).
  double TotalExternalInputBytes() const;

  // Longest path length in the op DAG, in ops (the paper reports DAG depth).
  int Depth() const;

 private:
  friend class OpHandle;

  std::vector<DatasetDef> datasets_;
  std::vector<OpDef> ops_;
  std::vector<DepDef> deps_;
};

}  // namespace ursa

#endif  // SRC_DAG_OPGRAPH_H_
