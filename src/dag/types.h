// Fundamental identifier and enum types shared across the DAG, execution and
// scheduling layers.
#ifndef SRC_DAG_TYPES_H_
#define SRC_DAG_TYPES_H_

#include <cstdint>
#include <string>

namespace ursa {

// A monotask uses exactly one of these resources (plus memory, which is
// accounted per-task; see section 4.2.1 of the paper).
enum class ResourceType : int {
  kCpu = 0,
  kNetwork = 1,
  kDisk = 2,
};
inline constexpr int kNumMonotaskResources = 3;

// Resource dimensions used in placement scoring (Eq. 1 sums over these).
enum class ResourceDim : int {
  kCpu = 0,
  kNetwork = 1,
  kDisk = 2,
  kMemory = 3,
};
inline constexpr int kNumResourceDims = 4;

inline const char* ResourceTypeName(ResourceType type) {
  switch (type) {
    case ResourceType::kCpu:
      return "cpu";
    case ResourceType::kNetwork:
      return "network";
    case ResourceType::kDisk:
      return "disk";
  }
  return "?";
}

// Dependency kinds between Ops (section 4.1.1). A sync dependency is a
// barrier: the downstream Op may only run once the upstream Op finished on
// every partition. An async dependency is per-partition pipelining.
enum class DepKind : int {
  kSync = 0,
  kAsync = 1,
};

using JobId = int32_t;
using OpId = int32_t;
using DataId = int32_t;
using MonotaskId = int32_t;
using TaskId = int32_t;
using StageId = int32_t;
using WorkerId = int32_t;

inline constexpr int32_t kInvalidId = -1;

}  // namespace ursa

#endif  // SRC_DAG_TYPES_H_
