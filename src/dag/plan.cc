#include "src/dag/plan.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace ursa {

namespace {

// Union-find over cop indices for stage grouping.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) { std::iota(parent_.begin(), parent_.end(), 0); }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

struct CopEdge {
  int from;
  int to;
  DepKind kind;
};

}  // namespace

ExecutionPlan ExecutionPlan::Build(const OpGraph& graph, uint64_t seed) {
  graph.Validate();
  ExecutionPlan plan;

  const auto& ops = graph.ops();
  const auto& deps = graph.deps();
  const size_t num_ops = ops.size();

  // Per-op parent/child edge lists for the collapse analysis.
  std::vector<std::vector<std::pair<OpId, DepKind>>> children(num_ops);
  std::vector<std::vector<std::pair<OpId, DepKind>>> parents(num_ops);
  for (const DepDef& dep : deps) {
    children[static_cast<size_t>(dep.from)].emplace_back(dep.to, dep.kind);
    parents[static_cast<size_t>(dep.to)].emplace_back(dep.from, dep.kind);
  }
  // Which ops read each dataset.
  std::vector<std::vector<OpId>> readers(graph.datasets().size());
  for (const OpDef& op : ops) {
    for (DataId d : op.reads) {
      readers[static_cast<size_t>(d)].push_back(op.id);
    }
  }

  // --- Step 1: collapse CPU chains connected by async deps. ---
  // `next[a] = b` when a and b can be fused (a feeds only b, b consumes only
  // a, both CPU, async edge, no Update side effects, equal parallelism).
  std::vector<OpId> next(num_ops, kInvalidId);
  std::vector<OpId> prev(num_ops, kInvalidId);
  for (size_t a = 0; a < num_ops; ++a) {
    const OpDef& op_a = ops[a];
    if (op_a.type != ResourceType::kCpu || !op_a.updates.empty()) {
      continue;
    }
    if (children[a].size() != 1 || children[a][0].second != DepKind::kAsync) {
      continue;
    }
    const OpId b = children[a][0].first;
    const OpDef& op_b = graph.op(b);
    if (op_b.type != ResourceType::kCpu || !op_b.updates.empty()) {
      continue;
    }
    if (parents[static_cast<size_t>(b)].size() != 1) {
      continue;
    }
    if (graph.OpParallelism(op_a.id) != graph.OpParallelism(b)) {
      continue;
    }
    // b must read exactly what a creates, and a's outputs must have no other
    // readers (so the intermediate datasets can disappear).
    bool fusable = !op_a.creates.empty();
    for (DataId d : op_b.reads) {
      if (graph.dataset(d).creator != op_a.id) {
        fusable = false;
      }
    }
    for (DataId d : op_a.creates) {
      const auto& r = readers[static_cast<size_t>(d)];
      if (r.size() != 1 || r[0] != b) {
        fusable = false;
      }
    }
    if (fusable) {
      next[a] = b;
      prev[static_cast<size_t>(b)] = op_a.id;
    }
  }

  // Walk maximal chains and build collapsed ops.
  std::vector<int> cop_of(num_ops, -1);
  for (size_t head = 0; head < num_ops; ++head) {
    if (prev[head] != kInvalidId) {
      continue;  // Not a chain head.
    }
    CollapsedOp cop;
    cop.index = static_cast<int>(plan.cops_.size());
    cop.type = ops[head].type;
    cop.parallelism = graph.OpParallelism(ops[head].id);
    cop.reads = ops[head].reads;
    cop.udf = ops[head].udf;
    double complexity = 0.0;
    double selectivity = 1.0;
    double fixed = 0.0;
    OpId cur = ops[head].id;
    while (cur != kInvalidId) {
      const OpDef& op = graph.op(cur);
      cop.members.push_back(cur);
      cop_of[static_cast<size_t>(cur)] = cop.index;
      complexity += selectivity * op.cost.cpu_complexity;
      fixed += op.cost.fixed_cpu_work;
      selectivity *= op.cost.output_selectivity;
      cop.cost.output_skew = std::max(cop.cost.output_skew, op.cost.output_skew);
      cop.m2i = std::max(cop.m2i, op.m2i);
      if (cop.name.empty()) {
        cop.name = op.name;
      } else {
        cop.name += "+" + op.name;
      }
      if (next[static_cast<size_t>(cur)] == kInvalidId) {
        cop.creates = op.creates;  // Outputs of the chain tail survive.
        // Keep any extra created datasets of intermediate members? The fuse
        // rule guarantees intermediates are read only by the next member, so
        // only the tail's outputs are externally visible.
      }
      cur = next[static_cast<size_t>(cur)];
    }
    cop.cost.cpu_complexity = complexity;
    cop.cost.output_selectivity = selectivity;
    cop.cost.fixed_cpu_work = fixed;
    // Every created dataset must have one partition per monotask.
    for (DataId d : cop.creates) {
      CHECK_EQ(graph.dataset(d).partitions, cop.parallelism)
          << "op " << cop.name << " creates dataset with mismatched partitioning";
    }
    plan.cops_.push_back(std::move(cop));
  }
  const size_t num_cops = plan.cops_.size();

  // --- Step 2: op-level edges between collapsed ops. ---
  std::vector<CopEdge> edges;
  {
    std::unordered_set<uint64_t> seen;
    for (const DepDef& dep : deps) {
      const int cf = cop_of[static_cast<size_t>(dep.from)];
      const int ct = cop_of[static_cast<size_t>(dep.to)];
      if (cf == ct) {
        continue;  // Fused away.
      }
      const uint64_t key = (static_cast<uint64_t>(cf) << 33) |
                           (static_cast<uint64_t>(ct) << 1) |
                           (dep.kind == DepKind::kSync ? 1u : 0u);
      if (seen.insert(key).second) {
        edges.push_back(CopEdge{cf, ct, dep.kind});
      }
    }
  }

  // --- Step 3: stage grouping. Async edges into non-network cops keep the
  // two cops in the same connected component (task/stage); everything else
  // (all edges into network cops) is a cross-stage edge. ---
  UnionFind uf(num_cops);
  for (const CopEdge& e : edges) {
    if (plan.cops_[static_cast<size_t>(e.to)].type != ResourceType::kNetwork) {
      CHECK(e.kind == DepKind::kAsync);  // Validate() guarantees this.
      uf.Union(static_cast<size_t>(e.from), static_cast<size_t>(e.to));
    }
  }

  // Global topological order of cops (edges respected), so stage-internal
  // monotask creation and in-task deps line up.
  std::vector<int> topo;
  {
    std::vector<int> indegree(num_cops, 0);
    std::vector<std::vector<int>> out(num_cops);
    for (const CopEdge& e : edges) {
      ++indegree[static_cast<size_t>(e.to)];
      out[static_cast<size_t>(e.from)].push_back(e.to);
    }
    std::vector<int> frontier;
    for (size_t i = 0; i < num_cops; ++i) {
      if (indegree[i] == 0) {
        frontier.push_back(static_cast<int>(i));
      }
    }
    // Stable order: process lowest index first for determinism.
    while (!frontier.empty()) {
      std::sort(frontier.begin(), frontier.end(), std::greater<int>());
      const int u = frontier.back();
      frontier.pop_back();
      topo.push_back(u);
      for (int v : out[static_cast<size_t>(u)]) {
        if (--indegree[static_cast<size_t>(v)] == 0) {
          frontier.push_back(v);
        }
      }
    }
    CHECK_EQ(topo.size(), num_cops);
  }

  // Assign stage ids in topo order of first appearance.
  std::unordered_map<size_t, StageId> root_to_stage;
  for (int ci : topo) {
    const size_t root = uf.Find(static_cast<size_t>(ci));
    auto [it, inserted] = root_to_stage.emplace(root, static_cast<StageId>(plan.stages_.size()));
    if (inserted) {
      StageSpec stage;
      stage.id = it->second;
      plan.stages_.push_back(std::move(stage));
    }
    CollapsedOp& cop = plan.cops_[static_cast<size_t>(ci)];
    cop.stage = it->second;
    StageSpec& stage = plan.stages_[static_cast<size_t>(it->second)];
    stage.cops.push_back(ci);
    if (stage.num_tasks == 0) {
      stage.num_tasks = cop.parallelism;
    } else {
      CHECK_EQ(stage.num_tasks, cop.parallelism)
          << "stage with mismatched parallelism at op " << cop.name;
    }
    stage.m2i = std::max(stage.m2i, cop.m2i);
    if (stage.name.empty()) {
      stage.name = cop.name;
    }
  }

  // Cross-stage dependencies at cop level.
  std::vector<std::vector<int>> intask_parent_cops(num_cops);
  for (const CopEdge& e : edges) {
    CollapsedOp& to = plan.cops_[static_cast<size_t>(e.to)];
    const CollapsedOp& from = plan.cops_[static_cast<size_t>(e.from)];
    if (to.stage == from.stage) {
      CHECK(e.kind == DepKind::kAsync)
          << "sync dependency " << from.name << " -> " << to.name
          << " collapsed into one stage: an async path short-circuits the "
             "barrier (route the data through the shuffle instead)";
      intask_parent_cops[static_cast<size_t>(e.to)].push_back(e.from);
    } else if (e.kind == DepKind::kSync) {
      to.sync_parents.push_back(e.from);
    } else {
      CHECK_EQ(to.parallelism, from.parallelism);
      to.async_parents.push_back(e.from);
    }
  }

  // --- Step 4: read modes. ---
  for (CollapsedOp& cop : plan.cops_) {
    cop.read_modes.resize(cop.reads.size());
    for (size_t r = 0; r < cop.reads.size(); ++r) {
      const DataId d = cop.reads[r];
      const DatasetDef& ds = graph.dataset(d);
      if (!ds.external_sizes.empty()) {
        cop.read_modes[r] = ReadMode::kExternal;
        CHECK_EQ(ds.partitions, cop.parallelism)
            << "op " << cop.name << " reads external data with mismatched partitioning";
        continue;
      }
      CHECK_NE(ds.creator, kInvalidId);
      const int creator_cop = cop_of[static_cast<size_t>(ds.creator)];
      CHECK_NE(creator_cop, cop.index) << "self-read after collapse in " << cop.name;
      // Find the edge kind between the creator cop and this cop.
      bool found = false;
      DepKind kind = DepKind::kAsync;
      for (const CopEdge& e : edges) {
        if (e.from == creator_cop && e.to == cop.index) {
          found = true;
          kind = e.kind;
          if (kind == DepKind::kSync) {
            break;  // Prefer the sync edge if both exist.
          }
        }
      }
      CHECK(found) << "op " << cop.name << " reads dataset " << ds.name
                   << " but has no dependency on its creator";
      if (kind == DepKind::kSync) {
        cop.read_modes[r] = ReadMode::kGatherSlices;
      } else {
        cop.read_modes[r] = ReadMode::kOnePartition;
        CHECK_EQ(ds.partitions, cop.parallelism);
      }
    }
  }

  // --- Step 5: skew weights (deterministic per seed and op). ---
  for (CollapsedOp& cop : plan.cops_) {
    cop.slice_weights.assign(static_cast<size_t>(cop.parallelism), 1.0);
    if (cop.cost.output_skew > 1.0 && cop.parallelism > 1) {
      Rng rng(seed ^ (0x517cc1b727220a95ULL * static_cast<uint64_t>(cop.index + 1)));
      double total = 0.0;
      for (double& w : cop.slice_weights) {
        w = rng.SkewFactor(cop.cost.output_skew);
        total += w;
      }
      const double norm = static_cast<double>(cop.parallelism) / total;
      for (double& w : cop.slice_weights) {
        w *= norm;
      }
    }
  }

  // --- Step 6: tasks and monotasks. ---
  for (StageSpec& stage : plan.stages_) {
    for (int i = 0; i < stage.num_tasks; ++i) {
      TaskSpec task;
      task.id = static_cast<TaskId>(plan.tasks_.size());
      task.stage = stage.id;
      task.index = i;
      // Monotasks, one per cop, in stage-internal topo order (stage.cops is
      // already globally topo-ordered).
      std::unordered_map<int, MonotaskId> cop_to_mt;
      for (int ci : stage.cops) {
        MonotaskSpec mt;
        mt.id = static_cast<MonotaskId>(plan.monotasks_.size());
        mt.cop = ci;
        mt.index = i;
        mt.type = plan.cops_[static_cast<size_t>(ci)].type;
        mt.task = task.id;
        for (int pc : intask_parent_cops[static_cast<size_t>(ci)]) {
          auto it = cop_to_mt.find(pc);
          CHECK(it != cop_to_mt.end()) << "in-task parent not yet materialized";
          mt.intask_deps.push_back(it->second);
        }
        cop_to_mt.emplace(ci, mt.id);
        task.monotasks.push_back(mt.id);
        plan.monotasks_.push_back(std::move(mt));
      }
      for (MonotaskId m : task.monotasks) {
        for (MonotaskId dep : plan.monotasks_[static_cast<size_t>(m)].intask_deps) {
          plan.monotasks_[static_cast<size_t>(dep)].intask_dependents.push_back(m);
        }
      }
      stage.tasks.push_back(task.id);
      plan.tasks_.push_back(std::move(task));
    }
  }

  // --- Step 7: task-level dependencies. ---
  for (StageSpec& stage : plan.stages_) {
    std::vector<StageId> sync_parent_stages;
    std::vector<StageId> async_parent_stages;
    for (int ci : stage.cops) {
      const CollapsedOp& cop = plan.cops_[static_cast<size_t>(ci)];
      for (int p : cop.sync_parents) {
        sync_parent_stages.push_back(plan.cops_[static_cast<size_t>(p)].stage);
      }
      for (int p : cop.async_parents) {
        async_parent_stages.push_back(plan.cops_[static_cast<size_t>(p)].stage);
      }
    }
    auto dedupe = [](std::vector<StageId>& v) {
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    };
    dedupe(sync_parent_stages);
    dedupe(async_parent_stages);
    for (TaskId t : stage.tasks) {
      TaskSpec& task = plan.tasks_[static_cast<size_t>(t)];
      task.sync_parent_stages = sync_parent_stages;
      for (StageId ps : async_parent_stages) {
        const StageSpec& parent_stage = plan.stages_[static_cast<size_t>(ps)];
        CHECK_EQ(parent_stage.num_tasks, stage.num_tasks);
        const TaskId parent_task = parent_stage.tasks[static_cast<size_t>(task.index)];
        task.async_parents.push_back(parent_task);
        plan.tasks_[static_cast<size_t>(parent_task)].async_children.push_back(t);
      }
    }
    for (StageId ps : sync_parent_stages) {
      plan.stages_[static_cast<size_t>(ps)].sync_child_stages.push_back(stage.id);
    }
  }

  // --- Dataset bookkeeping. ---
  plan.dataset_partitions_.reserve(graph.datasets().size());
  plan.external_sizes_.reserve(graph.datasets().size());
  for (const DatasetDef& ds : graph.datasets()) {
    plan.dataset_partitions_.push_back(ds.partitions);
    plan.external_sizes_.push_back(ds.external_sizes);
  }
  plan.total_input_bytes_ = graph.TotalExternalInputBytes();
  plan.cop_topo_order_ = std::move(topo);
  return plan;
}

std::array<double, kNumMonotaskResources> ExecutionPlan::ExpectedWorkByResource() const {
  std::array<double, kNumMonotaskResources> work = {0.0, 0.0, 0.0};
  // Dataset totals propagate through cops in topological order; skew
  // preserves totals, so the expected sizes are exact at this granularity.
  std::vector<double> dataset_bytes(dataset_partitions_.size(), 0.0);
  for (size_t d = 0; d < external_sizes_.size(); ++d) {
    for (double b : external_sizes_[d]) {
      dataset_bytes[d] += b;
    }
  }
  for (int ci : cop_topo_order_) {
    const CollapsedOp& cop = cops_[static_cast<size_t>(ci)];
    double input = 0.0;
    for (DataId d : cop.reads) {
      input += dataset_bytes[static_cast<size_t>(d)];
    }
    work[static_cast<size_t>(cop.type)] += input;
    for (DataId d : cop.creates) {
      dataset_bytes[static_cast<size_t>(d)] = input * cop.cost.output_selectivity;
    }
  }
  return work;
}

}  // namespace ursa
