// Stage-level critical-path analysis for DAG-aware scheduling policies
// (DESIGN.md section 13).
//
// Graphene-style ordering ("Do the Hard Stuff First", PAPERS.md) needs to
// know, per job DAG, which stages sit on the long pole. This module derives
// a stage-level precedence DAG from the execution plan (async parent tasks
// and sync parent stages), estimates per-stage work with the same
// byte-propagation model that seeds SRJF's remaining-work vector, and
// computes:
//
//   work[s]          expected per-task service bytes of stage s (total stage
//                    bytes / tasks: the duration proxy for path lengths);
//   top_level[s]     heaviest work path from any root down to s, inclusive;
//   bottom_level[s]  heaviest work path from s, inclusive, to any sink;
//   critical_path    max over stages of top + bottom - work;
//   troublesome[s]   s is in the job's troublesome subset.
//
// The troublesome subset is seeded with the long-pole stages — those whose
// heaviest through-path top+bottom-work reaches at least `threshold` of the
// critical path — and then closed convexly: any stage with both a
// troublesome ancestor and a troublesome descendant joins the subset, so
// ordering the subset first never strands a member behind a non-member it
// depends on. One closure pass is a fixpoint because ancestor/descendant
// relations are transitive (a stage qualifying through an added member also
// qualifies through that member's own seed ancestor/descendant).
//
// Everything here is pure arithmetic over the plan: no clocks, no
// randomness, no pointers as keys — safe for the bit-identical determinism
// contract of the scheduler core.
#ifndef SRC_DAG_CRITICAL_PATH_H_
#define SRC_DAG_CRITICAL_PATH_H_

#include <vector>

#include "src/dag/plan.h"

namespace ursa {

struct StageCriticality {
  std::vector<double> work;          // Per-task expected bytes, per stage.
  std::vector<double> top_level;     // Root-to-stage heaviest path, inclusive.
  std::vector<double> bottom_level;  // Stage-to-sink heaviest path, inclusive.
  std::vector<bool> troublesome;     // Long-pole subset, convexly closed.
  double critical_path = 0.0;        // Heaviest root-to-sink path weight.

  bool IsTroublesome(StageId s) const {
    return s >= 0 && static_cast<size_t>(s) < troublesome.size() &&
           troublesome[static_cast<size_t>(s)];
  }
  // Normalized urgency of a troublesome stage: how much of the critical path
  // still hangs below it. In [0, 1]; 0 for non-troublesome stages.
  double BottomShare(StageId s) const {
    if (!IsTroublesome(s) || critical_path <= 0.0) {
      return 0.0;
    }
    return bottom_level[static_cast<size_t>(s)] / critical_path;
  }
};

// Stage-level parent lists (deduplicated, ascending) derived from the plan's
// task-level async parents and stage-level sync barriers. Exposed for the
// policy property tests.
std::vector<std::vector<StageId>> StageParents(const ExecutionPlan& plan);

// Full analysis of one plan. `threshold` in (0, 1]: the long-pole membership
// bar as a fraction of the critical path. The troublesome subset is never
// empty when the plan has stages (the critical path's own stages always
// qualify at any threshold <= 1).
StageCriticality AnalyzeStages(const ExecutionPlan& plan, double threshold);

}  // namespace ursa

#endif  // SRC_DAG_CRITICAL_PATH_H_
