// Compilation of an OpGraph into the monotask execution plan (section 4.1.3).
//
// Steps, following the paper:
//  1. Connected subgraphs of CPU Ops linked by async dependencies are
//     collapsed into single CPU Ops ("CollapsedOp") for scheduling
//     scalability.
//  2. Every (collapsed) Op becomes `parallelism` monotasks, one per
//     partition. A sync dependency induces a many-to-many (bipartite)
//     dependency between the monotasks of the two Ops; an async dependency
//     induces one-to-one dependencies. Many-to-many dependencies are kept
//     implicit (a barrier on the upstream Op) rather than materialized.
//  3. Removing the in-edges of network monotasks decomposes the monotask DAG
//     into connected components; each component is a *task* (its monotasks
//     are co-located on one worker because network transfer is pull-based).
//     Tasks generated from the same Ops form a *stage*.
//
// Because sync dependencies only target network Ops (enforced by
// OpGraph::Validate), all removed edges are exactly the cross-stage edges,
// so a stage is a connected group of collapsed Ops and task i of a stage is
// the i-th monotask of every Op in the group.
#ifndef SRC_DAG_PLAN_H_
#define SRC_DAG_PLAN_H_

#include <array>
#include <string>
#include <vector>

#include "src/dag/opgraph.h"
#include "src/dag/types.h"

namespace ursa {

// How a monotask consumes one of its input datasets.
enum class ReadMode : int {
  // Monotask `i` reads partition `i` (async dependency / local read).
  kOnePartition = 0,
  // Monotask `i` pulls slice `i` of every partition (sync shuffle gather).
  kGatherSlices = 1,
  // Monotask `i` reads partition `i` of an external dataset (job input).
  kExternal = 2,
};

struct CollapsedOp {
  int index = -1;                 // Position in ExecutionPlan::cops().
  ResourceType type = ResourceType::kCpu;
  std::string name;
  std::vector<OpId> members;      // Original ops, in chain order.
  std::vector<DataId> reads;
  std::vector<ReadMode> read_modes;  // Parallel to `reads`.
  std::vector<DataId> creates;
  OpCostModel cost;               // Composed along the collapsed chain.
  int parallelism = 0;
  double m2i = 0.0;               // Memory-to-input ratio; 0 = job default.
  StageId stage = kInvalidId;
  // Per-output-partition skew weights, mean 1.0, size == parallelism.
  std::vector<double> slice_weights;
  // Op-level dependencies (indices into cops):
  std::vector<int> async_parents;   // One-to-one, same partition index.
  std::vector<int> sync_parents;    // Barrier on the whole upstream op.
  int udf = -1;
};

struct MonotaskSpec {
  MonotaskId id = kInvalidId;
  int cop = -1;       // Collapsed op index.
  int index = -1;     // Partition index within the op.
  ResourceType type = ResourceType::kCpu;
  TaskId task = kInvalidId;
  // Monotask-level dependencies *within the same task* (in-task async
  // edges). Cross-task dependencies are tracked at task granularity.
  std::vector<MonotaskId> intask_deps;
  std::vector<MonotaskId> intask_dependents;
};

struct TaskSpec {
  TaskId id = kInvalidId;
  StageId stage = kInvalidId;
  int index = -1;  // Partition index.
  std::vector<MonotaskId> monotasks;  // Topologically ordered.
  // Task-level dependencies:
  std::vector<TaskId> async_parents;       // Same-index tasks of other stages.
  std::vector<StageId> sync_parent_stages; // Whole-stage barriers.
  std::vector<TaskId> async_children;      // Reverse of async_parents.
};

struct StageSpec {
  StageId id = kInvalidId;
  std::string name;
  std::vector<int> cops;       // Collapsed ops in this stage (topo order).
  std::vector<TaskId> tasks;
  int num_tasks = 0;
  double m2i = 0.0;            // Effective memory-to-input ratio.
  // Stages whose tasks sync-depend on this stage (for barrier release).
  std::vector<StageId> sync_child_stages;
};

class ExecutionPlan {
 public:
  // Compiles `graph` (validated inside). `seed` drives the deterministic
  // skew weights. The graph must outlive nothing - the plan copies all it
  // needs.
  static ExecutionPlan Build(const OpGraph& graph, uint64_t seed);

  const std::vector<CollapsedOp>& cops() const { return cops_; }
  const std::vector<MonotaskSpec>& monotasks() const { return monotasks_; }
  const std::vector<TaskSpec>& tasks() const { return tasks_; }
  const std::vector<StageSpec>& stages() const { return stages_; }

  const CollapsedOp& cop(int i) const { return cops_[static_cast<size_t>(i)]; }
  const MonotaskSpec& monotask(MonotaskId id) const {
    return monotasks_[static_cast<size_t>(id)];
  }
  const TaskSpec& task(TaskId id) const { return tasks_[static_cast<size_t>(id)]; }
  const StageSpec& stage(StageId id) const { return stages_[static_cast<size_t>(id)]; }

  // Dataset bookkeeping copied from the graph.
  int dataset_partitions(DataId d) const { return dataset_partitions_[static_cast<size_t>(d)]; }
  const std::vector<double>& external_sizes(DataId d) const {
    return external_sizes_[static_cast<size_t>(d)];
  }
  size_t num_datasets() const { return dataset_partitions_.size(); }

  // Total external input bytes (the job input size I(j)).
  double total_input_bytes() const { return total_input_bytes_; }

  // Collapsed-op indices in a global topological order (edges respected).
  const std::vector<int>& cop_topo_order() const { return cop_topo_order_; }

  // Expected total bytes flowing through each resource type for the whole
  // job, assuming uniform skew (used to seed SRJF's remaining-work vector R
  // from "historical information", and by workload calibration).
  std::array<double, kNumMonotaskResources> ExpectedWorkByResource() const;

 private:
  std::vector<CollapsedOp> cops_;
  std::vector<MonotaskSpec> monotasks_;
  std::vector<TaskSpec> tasks_;
  std::vector<StageSpec> stages_;
  std::vector<int> dataset_partitions_;
  std::vector<std::vector<double>> external_sizes_;
  std::vector<int> cop_topo_order_;
  double total_input_bytes_ = 0.0;
};

}  // namespace ursa

#endif  // SRC_DAG_PLAN_H_
