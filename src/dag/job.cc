#include "src/dag/job.h"

#include "src/common/logging.h"

namespace ursa {

std::unique_ptr<Job> Job::Create(JobId id, JobSpec spec) {
  auto job = std::make_unique<Job>();
  job->id = id;
  job->plan = ExecutionPlan::Build(spec.graph, spec.seed);
  job->spec = std::move(spec);
  CHECK_GT(job->spec.declared_memory_bytes, 0.0)
      << "job " << job->spec.name << " must declare a memory estimate";
  return job;
}

}  // namespace ursa
