#include "src/dag/critical_path.h"

#include <algorithm>

#include "src/common/logging.h"

namespace ursa {

std::vector<std::vector<StageId>> StageParents(const ExecutionPlan& plan) {
  const size_t n = plan.stages().size();
  std::vector<std::vector<StageId>> parents(n);
  for (const StageSpec& stage : plan.stages()) {
    std::vector<StageId>& out = parents[static_cast<size_t>(stage.id)];
    if (stage.tasks.empty()) {
      continue;
    }
    // Every task of a stage carries the same stage-level dependency shape
    // (plan.cc assigns identical sync_parent_stages and same-index async
    // parents to all of them), so the first task is representative.
    const TaskSpec& task = plan.task(stage.tasks.front());
    for (StageId p : task.sync_parent_stages) {
      out.push_back(p);
    }
    for (TaskId p : task.async_parents) {
      out.push_back(plan.task(p).stage);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    out.erase(std::remove(out.begin(), out.end(), stage.id), out.end());
  }
  return parents;
}

namespace {

// Expected total bytes flowing through each stage, via the same
// topological byte-propagation as ExecutionPlan::ExpectedWorkByResource —
// skew preserves totals, so these are exact at stage granularity.
std::vector<double> StageBytes(const ExecutionPlan& plan) {
  std::vector<double> bytes(plan.stages().size(), 0.0);
  std::vector<double> dataset_bytes(plan.num_datasets(), 0.0);
  for (size_t d = 0; d < plan.num_datasets(); ++d) {
    for (double b : plan.external_sizes(static_cast<DataId>(d))) {
      dataset_bytes[d] += b;
    }
  }
  for (int ci : plan.cop_topo_order()) {
    const CollapsedOp& cop = plan.cop(ci);
    double input = 0.0;
    for (DataId d : cop.reads) {
      input += dataset_bytes[static_cast<size_t>(d)];
    }
    if (cop.stage != kInvalidId) {
      bytes[static_cast<size_t>(cop.stage)] += input;
    }
    for (DataId d : cop.creates) {
      dataset_bytes[static_cast<size_t>(d)] = input * cop.cost.output_selectivity;
    }
  }
  return bytes;
}

// Stage ids in a topological order of the stage DAG (parents first).
std::vector<StageId> StageTopoOrder(const std::vector<std::vector<StageId>>& parents) {
  const size_t n = parents.size();
  std::vector<int> remaining(n, 0);
  std::vector<std::vector<StageId>> children(n);
  for (size_t s = 0; s < n; ++s) {
    remaining[s] = static_cast<int>(parents[s].size());
    for (StageId p : parents[s]) {
      children[static_cast<size_t>(p)].push_back(static_cast<StageId>(s));
    }
  }
  std::vector<StageId> order;
  order.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    if (remaining[s] == 0) {
      order.push_back(static_cast<StageId>(s));
    }
  }
  for (size_t i = 0; i < order.size(); ++i) {
    for (StageId c : children[static_cast<size_t>(order[i])]) {
      if (--remaining[static_cast<size_t>(c)] == 0) {
        order.push_back(c);
      }
    }
  }
  CHECK_EQ(order.size(), n) << "stage DAG has a cycle";
  return order;
}

}  // namespace

StageCriticality AnalyzeStages(const ExecutionPlan& plan, double threshold) {
  CHECK_GT(threshold, 0.0);
  CHECK_LE(threshold, 1.0);
  const size_t n = plan.stages().size();
  StageCriticality crit;
  crit.work.assign(n, 0.0);
  crit.top_level.assign(n, 0.0);
  crit.bottom_level.assign(n, 0.0);
  crit.troublesome.assign(n, false);
  if (n == 0) {
    return crit;
  }

  const std::vector<double> bytes = StageBytes(plan);
  for (size_t s = 0; s < n; ++s) {
    const int tasks = std::max(1, plan.stage(static_cast<StageId>(s)).num_tasks);
    crit.work[s] = bytes[s] / static_cast<double>(tasks);
  }

  const std::vector<std::vector<StageId>> parents = StageParents(plan);
  std::vector<std::vector<StageId>> children(n);
  for (size_t s = 0; s < n; ++s) {
    for (StageId p : parents[s]) {
      children[static_cast<size_t>(p)].push_back(static_cast<StageId>(s));
    }
  }
  const std::vector<StageId> topo = StageTopoOrder(parents);

  // Heaviest paths: parents-first for top levels, children-first (reverse
  // topo) for bottom levels. Both include the stage's own work.
  for (StageId s : topo) {
    double best = 0.0;
    for (StageId p : parents[static_cast<size_t>(s)]) {
      best = std::max(best, crit.top_level[static_cast<size_t>(p)]);
    }
    crit.top_level[static_cast<size_t>(s)] = best + crit.work[static_cast<size_t>(s)];
  }
  for (size_t i = topo.size(); i-- > 0;) {
    const StageId s = topo[i];
    double best = 0.0;
    for (StageId c : children[static_cast<size_t>(s)]) {
      best = std::max(best, crit.bottom_level[static_cast<size_t>(c)]);
    }
    crit.bottom_level[static_cast<size_t>(s)] = best + crit.work[static_cast<size_t>(s)];
  }
  for (size_t s = 0; s < n; ++s) {
    crit.critical_path = std::max(
        crit.critical_path, crit.top_level[s] + crit.bottom_level[s] - crit.work[s]);
  }

  // Long-pole seed set: stages whose heaviest through-path reaches the
  // threshold share of the critical path. The maximizing stages always
  // qualify, so the subset is nonempty for any threshold <= 1.
  for (size_t s = 0; s < n; ++s) {
    const double through = crit.top_level[s] + crit.bottom_level[s] - crit.work[s];
    crit.troublesome[s] = through >= threshold * crit.critical_path;
  }

  // Convex closure: a stage strictly between two troublesome stages joins
  // the subset. Transitivity makes one ancestor/descendant sweep a fixpoint.
  std::vector<char> t_anc(n, 0);   // Has a troublesome proper ancestor.
  std::vector<char> t_desc(n, 0);  // Has a troublesome proper descendant.
  for (StageId s : topo) {
    for (StageId p : parents[static_cast<size_t>(s)]) {
      if (crit.troublesome[static_cast<size_t>(p)] || t_anc[static_cast<size_t>(p)]) {
        t_anc[static_cast<size_t>(s)] = 1;
        break;
      }
    }
  }
  for (size_t i = topo.size(); i-- > 0;) {
    const StageId s = topo[i];
    for (StageId c : children[static_cast<size_t>(s)]) {
      if (crit.troublesome[static_cast<size_t>(c)] || t_desc[static_cast<size_t>(c)]) {
        t_desc[static_cast<size_t>(s)] = 1;
        break;
      }
    }
  }
  for (size_t s = 0; s < n; ++s) {
    if (t_anc[s] != 0 && t_desc[s] != 0) {
      crit.troublesome[s] = true;
    }
  }
  return crit;
}

}  // namespace ursa
