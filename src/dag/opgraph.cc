#include "src/dag/opgraph.h"

#include <algorithm>

#include "src/common/logging.h"

namespace ursa {

OpHandle& OpHandle::Read(DataId data) {
  graph_->op(id_).reads.push_back(data);
  return *this;
}

OpHandle& OpHandle::Create(DataId data) {
  OpDef& op = graph_->op(id_);
  op.creates.push_back(data);
  DatasetDef& ds = graph_->dataset(data);
  CHECK_EQ(ds.creator, kInvalidId) << "dataset " << ds.name << " already has a creator";
  CHECK(ds.external_sizes.empty()) << "external dataset cannot have a creator";
  ds.creator = id_;
  return *this;
}

OpHandle& OpHandle::Update(DataId data) {
  graph_->op(id_).updates.push_back(data);
  return *this;
}

OpHandle& OpHandle::SetCost(const OpCostModel& cost) {
  graph_->op(id_).cost = cost;
  return *this;
}

OpHandle& OpHandle::SetParallelism(int parallelism) {
  CHECK_GT(parallelism, 0);
  graph_->op(id_).parallelism = parallelism;
  return *this;
}

OpHandle& OpHandle::SetUdf(int udf_index) {
  graph_->op(id_).udf = udf_index;
  return *this;
}

OpHandle& OpHandle::SetM2i(double m2i) {
  graph_->op(id_).m2i = m2i;
  return *this;
}

OpHandle& OpHandle::SetName(const std::string& name) {
  graph_->op(id_).name = name;
  return *this;
}

OpHandle& OpHandle::To(const OpHandle& downstream, DepKind kind) {
  CHECK(downstream.valid());
  CHECK(graph_ == downstream.graph_) << "dependency across different OpGraphs";
  graph_->AddDep(id_, downstream.id_, kind);
  return *this;
}

DataId OpGraph::CreateData(int partitions, const std::string& name) {
  CHECK_GT(partitions, 0);
  DatasetDef ds;
  ds.id = static_cast<DataId>(datasets_.size());
  ds.partitions = partitions;
  ds.name = name.empty() ? ("data" + std::to_string(ds.id)) : name;
  datasets_.push_back(std::move(ds));
  return datasets_.back().id;
}

DataId OpGraph::CreateExternalData(std::vector<double> partition_bytes, const std::string& name) {
  CHECK(!partition_bytes.empty());
  DatasetDef ds;
  ds.id = static_cast<DataId>(datasets_.size());
  ds.partitions = static_cast<int>(partition_bytes.size());
  ds.name = name.empty() ? ("input" + std::to_string(ds.id)) : name;
  ds.external_sizes = std::move(partition_bytes);
  datasets_.push_back(std::move(ds));
  return datasets_.back().id;
}

OpHandle OpGraph::CreateOp(ResourceType type, const std::string& name) {
  OpDef op;
  op.id = static_cast<OpId>(ops_.size());
  op.type = type;
  op.name = name.empty() ? (std::string(ResourceTypeName(type)) + std::to_string(op.id)) : name;
  ops_.push_back(std::move(op));
  return OpHandle(this, ops_.back().id);
}

void OpGraph::AddDep(OpId from, OpId to, DepKind kind) {
  CHECK_GE(from, 0);
  CHECK_LT(from, static_cast<OpId>(ops_.size()));
  CHECK_GE(to, 0);
  CHECK_LT(to, static_cast<OpId>(ops_.size()));
  CHECK_NE(from, to);
  deps_.push_back(DepDef{from, to, kind});
}

DatasetDef& OpGraph::dataset(DataId id) {
  CHECK_GE(id, 0);
  CHECK_LT(id, static_cast<DataId>(datasets_.size()));
  return datasets_[static_cast<size_t>(id)];
}

const DatasetDef& OpGraph::dataset(DataId id) const {
  return const_cast<OpGraph*>(this)->dataset(id);
}

OpDef& OpGraph::op(OpId id) {
  CHECK_GE(id, 0);
  CHECK_LT(id, static_cast<OpId>(ops_.size()));
  return ops_[static_cast<size_t>(id)];
}

const OpDef& OpGraph::op(OpId id) const { return const_cast<OpGraph*>(this)->op(id); }

std::vector<std::pair<OpId, DepKind>> OpGraph::Parents(OpId op) const {
  std::vector<std::pair<OpId, DepKind>> out;
  for (const DepDef& dep : deps_) {
    if (dep.to == op) {
      out.emplace_back(dep.from, dep.kind);
    }
  }
  return out;
}

std::vector<std::pair<OpId, DepKind>> OpGraph::Children(OpId op) const {
  std::vector<std::pair<OpId, DepKind>> out;
  for (const DepDef& dep : deps_) {
    if (dep.from == op) {
      out.emplace_back(dep.to, dep.kind);
    }
  }
  return out;
}

int OpGraph::OpParallelism(OpId op_id) const {
  const OpDef& o = op(op_id);
  if (o.parallelism > 0) {
    return o.parallelism;
  }
  if (!o.creates.empty()) {
    return dataset(o.creates.front()).partitions;
  }
  if (!o.reads.empty()) {
    return dataset(o.reads.front()).partitions;
  }
  if (!o.updates.empty()) {
    return dataset(o.updates.front()).partitions;
  }
  LOG(Fatal) << "op " << o.name << " has no parallelism source";
  return 0;
}

double OpGraph::TotalExternalInputBytes() const {
  double total = 0.0;
  for (const DatasetDef& ds : datasets_) {
    for (double b : ds.external_sizes) {
      total += b;
    }
  }
  return total;
}

void OpGraph::Validate() const {
  // Every dataset read by some op is either external or created by an op.
  for (const OpDef& o : ops_) {
    for (DataId d : o.reads) {
      const DatasetDef& ds = dataset(d);
      CHECK(!ds.external_sizes.empty() || ds.creator != kInvalidId)
          << "op " << o.name << " reads dataset " << ds.name
          << " which is neither external nor created by any op";
    }
    if (o.type != ResourceType::kCpu) {
      CHECK_EQ(o.cost.cpu_complexity, 1.0)
          << "non-CPU op " << o.name << " must not set cpu_complexity";
    }
  }
  // Sync dependencies must target network ops (a barrier materializes as a
  // shuffle; see DESIGN.md section 5). Async endpoints must have matching
  // parallelism so the one-to-one mapping is well-defined.
  for (const DepDef& dep : deps_) {
    const OpDef& to = op(dep.to);
    if (dep.kind == DepKind::kSync) {
      CHECK(to.type == ResourceType::kNetwork)
          << "sync dependency into non-network op " << to.name;
    } else {
      CHECK_EQ(OpParallelism(dep.from), OpParallelism(dep.to))
          << "async dependency " << op(dep.from).name << " -> " << to.name
          << " with mismatched parallelism";
    }
  }
  // Acyclicity via Kahn's algorithm.
  std::vector<int> indegree(ops_.size(), 0);
  for (const DepDef& dep : deps_) {
    ++indegree[static_cast<size_t>(dep.to)];
  }
  std::vector<OpId> frontier;
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (indegree[i] == 0) {
      frontier.push_back(static_cast<OpId>(i));
    }
  }
  size_t visited = 0;
  while (!frontier.empty()) {
    const OpId u = frontier.back();
    frontier.pop_back();
    ++visited;
    for (const DepDef& dep : deps_) {
      if (dep.from == u && --indegree[static_cast<size_t>(dep.to)] == 0) {
        frontier.push_back(dep.to);
      }
    }
  }
  CHECK_EQ(visited, ops_.size()) << "OpGraph contains a dependency cycle";
}

int OpGraph::Depth() const {
  std::vector<int> depth(ops_.size(), 1);
  // Ops are created before the deps pointing at them, but dep order is
  // arbitrary; iterate to a fixed point (graphs are small).
  bool changed = true;
  int guard = 0;
  while (changed) {
    changed = false;
    CHECK_LT(++guard, 10000) << "Depth() requires an acyclic graph";
    for (const DepDef& dep : deps_) {
      const int want = depth[static_cast<size_t>(dep.from)] + 1;
      if (depth[static_cast<size_t>(dep.to)] < want) {
        depth[static_cast<size_t>(dep.to)] = want;
        changed = true;
      }
    }
  }
  int best = ops_.empty() ? 0 : 1;
  for (int d : depth) {
    best = std::max(best, d);
  }
  return best;
}

}  // namespace ursa
