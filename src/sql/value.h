// Value/row/schema model for the SQL layer (section 4.1.2: Ursa provides
// SQL on top of its primitives; this reproduction ships a self-contained
// engine instead of the paper's Hive plug-in, which contributes parsing but
// no scheduling behaviour).
#ifndef SRC_SQL_VALUE_H_
#define SRC_SQL_VALUE_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "src/common/logging.h"

namespace ursa {

enum class SqlType : int {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

using SqlValue = std::variant<int64_t, double, std::string>;
using SqlRow = std::vector<SqlValue>;

inline SqlType TypeOf(const SqlValue& value) {
  return static_cast<SqlType>(value.index());
}

// Three-way comparison usable across int64/double (numeric promotion);
// strings compare lexicographically and only with strings.
inline int CompareValues(const SqlValue& a, const SqlValue& b) {
  if (std::holds_alternative<std::string>(a) || std::holds_alternative<std::string>(b)) {
    CHECK(std::holds_alternative<std::string>(a) && std::holds_alternative<std::string>(b))
        << "comparing string with non-string";
    const auto& sa = std::get<std::string>(a);
    const auto& sb = std::get<std::string>(b);
    return sa < sb ? -1 : (sa == sb ? 0 : 1);
  }
  const double da =
      std::holds_alternative<int64_t>(a) ? static_cast<double>(std::get<int64_t>(a))
                                         : std::get<double>(a);
  const double db =
      std::holds_alternative<int64_t>(b) ? static_cast<double>(std::get<int64_t>(b))
                                         : std::get<double>(b);
  return da < db ? -1 : (da == db ? 0 : 1);
}

inline double ToDouble(const SqlValue& value) {
  if (std::holds_alternative<int64_t>(value)) {
    return static_cast<double>(std::get<int64_t>(value));
  }
  CHECK(std::holds_alternative<double>(value)) << "numeric value required";
  return std::get<double>(value);
}

inline std::string ToDisplayString(const SqlValue& value) {
  if (std::holds_alternative<int64_t>(value)) {
    return std::to_string(std::get<int64_t>(value));
  }
  if (std::holds_alternative<double>(value)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", std::get<double>(value));
    return buf;
  }
  return std::get<std::string>(value);
}

// Hash for shuffle partitioning.
inline size_t HashValue(const SqlValue& value) {
  if (std::holds_alternative<int64_t>(value)) {
    return std::hash<int64_t>{}(std::get<int64_t>(value));
  }
  if (std::holds_alternative<double>(value)) {
    return std::hash<double>{}(std::get<double>(value));
  }
  return std::hash<std::string>{}(std::get<std::string>(value));
}

struct SqlColumn {
  std::string name;
  SqlType type = SqlType::kInt64;
};

struct SqlSchema {
  std::vector<SqlColumn> columns;

  int IndexOf(const std::string& name) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].name == name) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
};

}  // namespace ursa

#endif  // SRC_SQL_VALUE_H_
