#include "src/sql/parser.h"

#include <algorithm>
#include <cctype>

#include "src/common/logging.h"

namespace ursa {

namespace {

enum class TokenKind : int {
  kIdent,
  kNumber,
  kString,
  kSymbol,  // ( ) , . * = != <> < <= > >=
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  SqlValue literal;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  bool Next(Token* token, std::string* error) {
    while (pos_ < input_.size() && std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= input_.size()) {
      token->kind = TokenKind::kEnd;
      token->text.clear();
      return true;
    }
    const char c = input_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t end = pos_;
      while (end < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[end])) || input_[end] == '_')) {
        ++end;
      }
      token->kind = TokenKind::kIdent;
      token->text = input_.substr(pos_, end - pos_);
      pos_ = end;
      return true;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < input_.size() &&
         std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
      size_t end = pos_ + 1;
      bool is_double = false;
      while (end < input_.size() &&
             (std::isdigit(static_cast<unsigned char>(input_[end])) || input_[end] == '.')) {
        if (input_[end] == '.') {
          is_double = true;
        }
        ++end;
      }
      token->kind = TokenKind::kNumber;
      token->text = input_.substr(pos_, end - pos_);
      if (is_double) {
        token->literal = std::stod(token->text);
      } else {
        token->literal = static_cast<int64_t>(std::stoll(token->text));
      }
      pos_ = end;
      return true;
    }
    if (c == '\'') {
      size_t end = pos_ + 1;
      while (end < input_.size() && input_[end] != '\'') {
        ++end;
      }
      if (end >= input_.size()) {
        *error = "unterminated string literal";
        return false;
      }
      token->kind = TokenKind::kString;
      token->text = input_.substr(pos_ + 1, end - pos_ - 1);
      token->literal = token->text;
      pos_ = end + 1;
      return true;
    }
    // Multi-char operators first.
    for (const char* op : {"!=", "<>", "<=", ">="}) {
      if (input_.compare(pos_, 2, op) == 0) {
        token->kind = TokenKind::kSymbol;
        token->text = op;
        pos_ += 2;
        return true;
      }
    }
    if (std::string("(),.*=<>").find(c) != std::string::npos) {
      token->kind = TokenKind::kSymbol;
      token->text = std::string(1, c);
      ++pos_;
      return true;
    }
    *error = std::string("unexpected character '") + c + "'";
    return false;
  }

 private:
  const std::string& input_;
  size_t pos_ = 0;
};

std::string Upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return s;
}

class Parser {
 public:
  explicit Parser(const std::string& input) : lexer_(input) {}

  bool Parse(SelectStatement* out, std::string* error) {
    error_ = error;
    if (!Advance()) {
      return false;
    }
    if (!ExpectKeyword("SELECT")) {
      return false;
    }
    if (!ParseSelectList(out)) {
      return false;
    }
    if (!ExpectKeyword("FROM")) {
      return false;
    }
    if (!ParseIdent(&out->from_table)) {
      return false;
    }
    while (IsKeyword("JOIN")) {
      if (!Advance()) {
        return false;
      }
      JoinClause join;
      if (!ParseIdent(&join.table) || !ExpectKeyword("ON")) {
        return false;
      }
      if (!ParseQualifiedIdent(&join.left_column)) {
        return false;
      }
      if (!ExpectSymbol("=")) {
        return false;
      }
      if (!ParseQualifiedIdent(&join.right_column)) {
        return false;
      }
      out->joins.push_back(std::move(join));
    }
    if (IsKeyword("WHERE")) {
      if (!Advance() || !ParseWhere(out)) {
        return false;
      }
    }
    if (IsKeyword("GROUP")) {
      if (!Advance() || !ExpectKeyword("BY")) {
        return false;
      }
      do {
        std::string column;
        if (!ParseQualifiedIdent(&column)) {
          return false;
        }
        out->group_by.push_back(std::move(column));
      } while (ConsumeSymbol(","));
    }
    if (IsKeyword("ORDER")) {
      if (!Advance() || !ExpectKeyword("BY")) {
        return false;
      }
      OrderBy order;
      if (!ParseQualifiedIdent(&order.column)) {
        return false;
      }
      if (IsKeyword("DESC")) {
        order.descending = true;
        if (!Advance()) {
          return false;
        }
      } else if (IsKeyword("ASC")) {
        if (!Advance()) {
          return false;
        }
      }
      out->order_by = std::move(order);
    }
    if (IsKeyword("LIMIT")) {
      if (!Advance()) {
        return false;
      }
      if (token_.kind != TokenKind::kNumber ||
          !std::holds_alternative<int64_t>(token_.literal)) {
        return Fail("LIMIT requires an integer");
      }
      out->limit = std::get<int64_t>(token_.literal);
      if (!Advance()) {
        return false;
      }
    }
    if (token_.kind != TokenKind::kEnd) {
      return Fail("unexpected trailing input: " + token_.text);
    }
    return true;
  }

 private:
  bool Fail(const std::string& message) {
    *error_ = message;
    return false;
  }

  bool Advance() {
    std::string lex_error;
    if (!lexer_.Next(&token_, &lex_error)) {
      return Fail(lex_error);
    }
    return true;
  }

  bool IsKeyword(const std::string& keyword) const {
    return token_.kind == TokenKind::kIdent && Upper(token_.text) == keyword;
  }

  bool ExpectKeyword(const std::string& keyword) {
    if (!IsKeyword(keyword)) {
      return Fail("expected " + keyword + ", got '" + token_.text + "'");
    }
    return Advance();
  }

  bool ExpectSymbol(const std::string& symbol) {
    if (token_.kind != TokenKind::kSymbol || token_.text != symbol) {
      return Fail("expected '" + symbol + "', got '" + token_.text + "'");
    }
    return Advance();
  }

  bool ConsumeSymbol(const std::string& symbol) {
    if (token_.kind == TokenKind::kSymbol && token_.text == symbol) {
      return Advance();
    }
    return false;
  }

  bool ParseIdent(std::string* out) {
    if (token_.kind != TokenKind::kIdent) {
      return Fail("expected identifier, got '" + token_.text + "'");
    }
    *out = token_.text;
    return Advance();
  }

  // table.column or column; stored as written (resolution handles both).
  bool ParseQualifiedIdent(std::string* out) {
    if (!ParseIdent(out)) {
      return false;
    }
    if (token_.kind == TokenKind::kSymbol && token_.text == ".") {
      if (!Advance()) {
        return false;
      }
      std::string rest;
      if (!ParseIdent(&rest)) {
        return false;
      }
      *out += "." + rest;
    }
    return true;
  }

  bool ParseSelectList(SelectStatement* out) {
    if (ConsumeSymbol("*")) {
      return true;  // Empty items list = SELECT *.
    }
    do {
      SelectItem item;
      static const struct {
        const char* name;
        AggFn fn;
      } kAggs[] = {{"COUNT", AggFn::kCount}, {"SUM", AggFn::kSum},   {"MIN", AggFn::kMin},
                   {"MAX", AggFn::kMax},     {"AVG", AggFn::kAvg}};
      bool is_agg = false;
      for (const auto& agg : kAggs) {
        if (IsKeyword(agg.name)) {
          item.agg = agg.fn;
          item.alias = Upper(token_.text);
          if (!Advance() || !ExpectSymbol("(")) {
            return false;
          }
          if (item.agg == AggFn::kCount && ConsumeSymbol("*")) {
            item.column.clear();
          } else {
            if (!ParseQualifiedIdent(&item.column)) {
              return false;
            }
          }
          if (!ExpectSymbol(")")) {
            return false;
          }
          item.alias += "(" + item.column + ")";
          is_agg = true;
          break;
        }
      }
      if (!is_agg) {
        if (!ParseQualifiedIdent(&item.column)) {
          return false;
        }
        item.alias = item.column;
      }
      if (IsKeyword("AS")) {
        if (!Advance() || !ParseIdent(&item.alias)) {
          return false;
        }
      }
      out->items.push_back(std::move(item));
    } while (ConsumeSymbol(","));
    return true;
  }

  bool ParseWhere(SelectStatement* out) {
    do {
      Predicate pred;
      if (!ParseQualifiedIdent(&pred.column)) {
        return false;
      }
      if (token_.kind != TokenKind::kSymbol) {
        return Fail("expected comparison operator");
      }
      const std::string op = token_.text;
      if (op == "=") {
        pred.op = CompareOp::kEq;
      } else if (op == "!=" || op == "<>") {
        pred.op = CompareOp::kNe;
      } else if (op == "<") {
        pred.op = CompareOp::kLt;
      } else if (op == "<=") {
        pred.op = CompareOp::kLe;
      } else if (op == ">") {
        pred.op = CompareOp::kGt;
      } else if (op == ">=") {
        pred.op = CompareOp::kGe;
      } else {
        return Fail("unknown operator '" + op + "'");
      }
      if (!Advance()) {
        return false;
      }
      if (token_.kind == TokenKind::kNumber || token_.kind == TokenKind::kString) {
        pred.literal = token_.literal;
        if (!Advance()) {
          return false;
        }
      } else {
        return Fail("expected literal after comparison");
      }
      out->where.push_back(std::move(pred));
    } while (IsKeyword("AND") && Advance());
    return true;
  }

  Lexer lexer_;
  Token token_;
  std::string* error_ = nullptr;
};

}  // namespace

bool TryParseSql(const std::string& query, SelectStatement* out, std::string* error) {
  Parser parser(query);
  return parser.Parse(out, error);
}

SelectStatement ParseSql(const std::string& query) {
  SelectStatement statement;
  std::string error;
  CHECK(TryParseSql(query, &statement, &error)) << "SQL syntax error: " << error
                                                << " in: " << query;
  return statement;
}

}  // namespace ursa
