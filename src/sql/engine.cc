#include "src/sql/engine.h"

#include <algorithm>
#include <limits>
#include <map>
#include <sstream>

#include "src/common/logging.h"
#include "src/runtime/local_runtime.h"

namespace ursa {

namespace {

// Resolves `name` ("col" or "table.col") in a schema of qualified names.
// Returns -1 when absent; CHECK-fails on ambiguity.
int ResolveColumn(const SqlSchema& schema, const std::string& name) {
  int found = -1;
  for (size_t i = 0; i < schema.columns.size(); ++i) {
    const std::string& column = schema.columns[i].name;
    const bool match =
        column == name ||
        (column.size() > name.size() &&
         column.compare(column.size() - name.size() - 1, name.size() + 1, "." + name) == 0);
    if (match) {
      CHECK_EQ(found, -1) << "ambiguous column reference: " << name;
      found = static_cast<int>(i);
    }
  }
  return found;
}

bool EvalPredicate(const SqlRow& row, int column, CompareOp op, const SqlValue& literal) {
  const int cmp = CompareValues(row[static_cast<size_t>(column)], literal);
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

struct BoundPredicate {
  int column;
  CompareOp op;
  SqlValue literal;
};

std::string GroupKey(const SqlRow& row, const std::vector<int>& key_columns) {
  std::string key;
  for (int c : key_columns) {
    key += ToDisplayString(row[static_cast<size_t>(c)]);
    key += '\x1f';
  }
  return key;
}

// One accumulator per aggregate select-item.
struct AggState {
  double sum = 0.0;
  int64_t count = 0;
  SqlValue extreme;  // MIN/MAX.
  bool has_extreme = false;
};

// A group's partial state shipped through the shuffle.
struct PartialGroup {
  SqlRow key_values;
  std::vector<AggState> aggs;
};

struct BoundAgg {
  AggFn fn;
  int column;  // -1 for COUNT(*).
};

void Accumulate(AggState* state, const BoundAgg& agg, const SqlRow& row) {
  ++state->count;
  if (agg.column >= 0 && agg.fn != AggFn::kCount) {
    const SqlValue& value = row[static_cast<size_t>(agg.column)];
    if (agg.fn == AggFn::kSum || agg.fn == AggFn::kAvg) {
      state->sum += ToDouble(value);
    } else if (!state->has_extreme ||
               (agg.fn == AggFn::kMin ? CompareValues(value, state->extreme) < 0
                                      : CompareValues(value, state->extreme) > 0)) {
      state->extreme = value;
      state->has_extreme = true;
    }
  }
}

void Merge(AggState* into, const AggState& from, const BoundAgg& agg) {
  into->count += from.count;
  into->sum += from.sum;
  if (from.has_extreme &&
      (!into->has_extreme ||
       (agg.fn == AggFn::kMin ? CompareValues(from.extreme, into->extreme) < 0
                              : CompareValues(from.extreme, into->extreme) > 0))) {
    into->extreme = from.extreme;
    into->has_extreme = true;
  }
}

SqlValue Finalize(const AggState& state, const BoundAgg& agg) {
  switch (agg.fn) {
    case AggFn::kCount:
      return state.count;
    case AggFn::kSum:
      return state.sum;
    case AggFn::kAvg:
      return state.count > 0 ? state.sum / static_cast<double>(state.count) : 0.0;
    case AggFn::kMin:
    case AggFn::kMax:
      return state.has_extreme ? state.extreme : SqlValue(int64_t{0});
    case AggFn::kNone:
      break;
  }
  LOG(Fatal) << "not an aggregate";
  return int64_t{0};
}

// Buckets rows by the hash of one column.
std::vector<std::any> BucketRows(std::vector<SqlRow> rows, int key_column, int buckets) {
  std::vector<std::vector<SqlRow>> out(static_cast<size_t>(buckets));
  for (SqlRow& row : rows) {
    const size_t b = HashValue(row[static_cast<size_t>(key_column)]) %
                     static_cast<size_t>(buckets);
    out[b].push_back(std::move(row));
  }
  std::vector<std::any> anys;
  anys.reserve(out.size());
  for (auto& bucket : out) {
    anys.emplace_back(std::move(bucket));
  }
  return anys;
}

std::vector<SqlRow> ConcatSlices(const std::vector<std::any>& slices) {
  std::vector<SqlRow> rows;
  for (const std::any& slice : slices) {
    const auto& part = *std::any_cast<std::vector<SqlRow>>(&slice);
    rows.insert(rows.end(), part.begin(), part.end());
  }
  return rows;
}

// The planner's pipeline state.
struct Stream {
  DataId data = kInvalidId;
  OpHandle creator;
  SqlSchema schema;
  int partitions = 0;
  double est_bytes = 0.0;
};

// Builds the OpGraph (and, when `runtime` is non-null, the real UDFs).
class PlanBuilder {
 public:
  PlanBuilder(const SqlCatalog* catalog, int shuffle_partitions, OpGraph* graph,
              LocalRuntime* runtime)
      : catalog_(catalog), shuffle_partitions_(shuffle_partitions), graph_(graph),
        runtime_(runtime) {}

  // Returns the final stream; fills *out_schema with the user-visible schema.
  Stream Build(const SelectStatement& statement, SqlSchema* out_schema) {
    std::vector<bool> applied(statement.where.size(), false);
    Stream stream = Scan(statement.from_table, statement.where, &applied);
    for (const JoinClause& join : statement.joins) {
      Stream right = Scan(join.table, statement.where, &applied);
      stream = HashJoin(std::move(stream), std::move(right), join);
    }
    for (size_t i = 0; i < statement.where.size(); ++i) {
      CHECK(applied[i]) << "unresolvable WHERE column: " << statement.where[i].column;
    }
    if (statement.has_aggregates() || !statement.group_by.empty()) {
      stream = Aggregate(std::move(stream), statement);
    } else if (!statement.items.empty()) {
      stream = Project(std::move(stream), statement.items);
    }
    if (statement.order_by.has_value() || statement.limit.has_value()) {
      stream = OrderAndLimit(std::move(stream), statement);
    }
    *out_schema = stream.schema;
    return stream;
  }

 private:
  int RegisterUdf(Udf udf) {
    if (runtime_ == nullptr) {
      return -1;
    }
    return runtime_->RegisterUdf(std::move(udf));
  }

  void MaybeSetUdf(OpHandle& op, int udf) {
    if (udf >= 0) {
      op.SetUdf(udf);
    }
  }

  Stream Scan(const std::string& table_name, const std::vector<Predicate>& where,
              std::vector<bool>* applied) {
    const SqlTable& table = catalog_->Get(table_name);
    Stream stream;
    stream.partitions = static_cast<int>(table.partitions.size());
    for (const SqlColumn& column : table.schema.columns) {
      stream.schema.columns.push_back(SqlColumn{table_name + "." + column.name, column.type});
    }
    // External dataset + input partitions.
    std::vector<double> sizes;
    std::vector<std::any> parts;
    for (const auto& partition : table.partitions) {
      sizes.push_back(1.0 + 64.0 * static_cast<double>(partition.size()));
      parts.emplace_back(partition);
    }
    const DataId input = graph_->CreateExternalData(std::move(sizes), table_name);
    if (runtime_ != nullptr) {
      runtime_->SetInput(input, std::move(parts));
    }
    // Push down every predicate resolvable against this table.
    std::vector<BoundPredicate> bound;
    double selectivity = 1.0;
    for (size_t i = 0; i < where.size(); ++i) {
      if ((*applied)[i]) {
        continue;
      }
      const int column = ResolveColumn(stream.schema, where[i].column);
      if (column >= 0) {
        bound.push_back(BoundPredicate{column, where[i].op, where[i].literal});
        (*applied)[i] = true;
        selectivity *= where[i].op == CompareOp::kEq ? 0.2 : 0.5;
      }
    }
    const DataId scanned = graph_->CreateData(stream.partitions, table_name + "-scan");
    OpCostModel cost;
    cost.cpu_complexity = 1.5;
    cost.output_selectivity = selectivity;
    OpHandle scan = graph_->CreateOp(ResourceType::kCpu, "scan-" + table_name)
                        .Read(input)
                        .Create(scanned)
                        .SetCost(cost)
                        .SetM2i(2.0);
    MaybeSetUdf(scan, RegisterUdf([bound](const UdfInputs& inputs) {
      const auto& in = *std::any_cast<std::vector<SqlRow>>(inputs[0]);
      std::vector<SqlRow> out;
      for (const SqlRow& row : in) {
        bool keep = true;
        for (const BoundPredicate& pred : bound) {
          if (!EvalPredicate(row, pred.column, pred.op, pred.literal)) {
            keep = false;
            break;
          }
        }
        if (keep) {
          out.push_back(row);
        }
      }
      return std::vector<std::any>{std::any(std::move(out))};
    }));
    stream.data = scanned;
    stream.creator = scan;
    stream.est_bytes = table.approx_bytes() * selectivity;
    return stream;
  }

  // Adds a ser(bucket-by-key) + sync shuffle for one join side.
  Stream ShuffleByKey(Stream in, int key_column, int out_partitions, const std::string& tag) {
    const DataId msg = graph_->CreateData(in.partitions, tag + "-msg");
    OpCostModel ser_cost;
    ser_cost.cpu_complexity = 1.0;
    OpHandle ser = graph_->CreateOp(ResourceType::kCpu, tag + "-ser")
                       .Read(in.data)
                       .Create(msg)
                       .SetCost(ser_cost);
    const int buckets = out_partitions;
    MaybeSetUdf(ser, RegisterUdf([key_column, buckets](const UdfInputs& inputs) {
      return std::vector<std::any>{
          std::any(BucketRows(*std::any_cast<std::vector<SqlRow>>(inputs[0]), key_column,
                              buckets))};
    }));
    if (in.creator.valid()) {
      in.creator.To(ser, DepKind::kAsync);
    }
    const DataId shuffled = graph_->CreateData(out_partitions, tag + "-shuffled");
    OpHandle shuffle =
        graph_->CreateOp(ResourceType::kNetwork, tag + "-shuffle").Read(msg).Create(shuffled);
    ser.To(shuffle, DepKind::kSync);
    Stream out;
    out.data = shuffled;
    out.creator = shuffle;
    out.schema = std::move(in.schema);
    out.partitions = out_partitions;
    out.est_bytes = in.est_bytes;
    return out;
  }

  Stream HashJoin(Stream left, Stream right, const JoinClause& join) {
    int left_key = ResolveColumn(left.schema, join.left_column);
    int right_key = ResolveColumn(right.schema, join.right_column);
    if (left_key < 0 && right_key < 0) {
      // Perhaps written the other way around.
      left_key = ResolveColumn(left.schema, join.right_column);
      right_key = ResolveColumn(right.schema, join.left_column);
    } else if (left_key < 0) {
      left_key = ResolveColumn(left.schema, join.right_column);
    } else if (right_key < 0) {
      right_key = ResolveColumn(right.schema, join.left_column);
    }
    CHECK_GE(left_key, 0) << "join key not found: " << join.left_column;
    CHECK_GE(right_key, 0) << "join key not found: " << join.right_column;

    const int p = shuffle_partitions_;
    Stream ls = ShuffleByKey(std::move(left), left_key, p, "join-l" + join.table);
    Stream rs = ShuffleByKey(std::move(right), right_key, p, "join-r" + join.table);

    Stream out;
    out.partitions = p;
    out.schema = ls.schema;
    for (const SqlColumn& column : rs.schema.columns) {
      out.schema.columns.push_back(column);
    }
    out.est_bytes = (ls.est_bytes + rs.est_bytes) * 0.7;
    const DataId joined = graph_->CreateData(p, "joined-" + join.table);
    OpCostModel cost;
    cost.cpu_complexity = 2.5;
    cost.output_selectivity = 0.7;
    OpHandle join_op = graph_->CreateOp(ResourceType::kCpu, "join-" + join.table)
                           .Read(ls.data)
                           .Read(rs.data)
                           .Create(joined)
                           .SetCost(cost)
                           .SetM2i(1.7);
    MaybeSetUdf(join_op, RegisterUdf([left_key, right_key](const UdfInputs& inputs) {
      const std::vector<SqlRow> left_rows =
          ConcatSlices(*std::any_cast<std::vector<std::any>>(inputs[0]));
      const std::vector<SqlRow> right_rows =
          ConcatSlices(*std::any_cast<std::vector<std::any>>(inputs[1]));
      // Ordered so rows joining the same key emit in build-insertion order on
      // every platform (detlint rule `no-unordered-iteration`).
      std::multimap<std::string, const SqlRow*> build;
      for (const SqlRow& row : right_rows) {
        build.emplace(ToDisplayString(row[static_cast<size_t>(right_key)]), &row);
      }
      std::vector<SqlRow> out_rows;
      for (const SqlRow& row : left_rows) {
        auto [lo, hi] = build.equal_range(ToDisplayString(row[static_cast<size_t>(left_key)]));
        for (auto it = lo; it != hi; ++it) {
          SqlRow combined = row;
          combined.insert(combined.end(), it->second->begin(), it->second->end());
          out_rows.push_back(std::move(combined));
        }
      }
      return std::vector<std::any>{std::any(std::move(out_rows))};
    }));
    ls.creator.To(join_op, DepKind::kAsync);
    rs.creator.To(join_op, DepKind::kAsync);
    out.data = joined;
    out.creator = join_op;
    return out;
  }

  Stream Aggregate(Stream in, const SelectStatement& statement) {
    // Bind group-by columns and aggregates against the input schema.
    std::vector<int> key_columns;
    for (const std::string& name : statement.group_by) {
      const int column = ResolveColumn(in.schema, name);
      CHECK_GE(column, 0) << "GROUP BY column not found: " << name;
      key_columns.push_back(column);
    }
    std::vector<BoundAgg> aggs;
    // Output layout: select items in order (group col or aggregate).
    struct OutputItem {
      bool is_agg;
      int index;  // Into key_columns or aggs.
    };
    std::vector<OutputItem> layout;
    SqlSchema out_schema;
    for (const SelectItem& item : statement.items) {
      if (item.agg == AggFn::kNone) {
        const int column = ResolveColumn(in.schema, item.column);
        CHECK_GE(column, 0) << "column not found: " << item.column;
        int key_index = -1;
        for (size_t k = 0; k < key_columns.size(); ++k) {
          if (key_columns[k] == column) {
            key_index = static_cast<int>(k);
          }
        }
        CHECK_GE(key_index, 0) << "non-aggregated column " << item.column
                               << " must appear in GROUP BY";
        layout.push_back(OutputItem{false, key_index});
        out_schema.columns.push_back(
            SqlColumn{item.alias, in.schema.columns[static_cast<size_t>(column)].type});
      } else {
        BoundAgg agg;
        agg.fn = item.agg;
        agg.column = item.column.empty() ? -1 : ResolveColumn(in.schema, item.column);
        CHECK(item.column.empty() || agg.column >= 0)
            << "aggregate column not found: " << item.column;
        layout.push_back(OutputItem{true, static_cast<int>(aggs.size())});
        SqlType type = SqlType::kDouble;
        if (item.agg == AggFn::kCount) {
          type = SqlType::kInt64;
        } else if ((item.agg == AggFn::kMin || item.agg == AggFn::kMax) && agg.column >= 0) {
          type = in.schema.columns[static_cast<size_t>(agg.column)].type;
        }
        out_schema.columns.push_back(SqlColumn{item.alias, type});
        aggs.push_back(agg);
      }
    }
    // GROUP BY without SELECT aggregates: emit the distinct keys.
    if (statement.items.empty()) {
      for (size_t k = 0; k < key_columns.size(); ++k) {
        layout.push_back(OutputItem{false, static_cast<int>(k)});
        out_schema.columns.push_back(in.schema.columns[static_cast<size_t>(key_columns[k])]);
      }
    }

    const bool global = key_columns.empty();
    const int out_partitions = global ? 1 : std::min(shuffle_partitions_, in.partitions);

    // Partial aggregation + bucketing by group key.
    const DataId partial = graph_->CreateData(in.partitions, "agg-partial");
    OpCostModel partial_cost;
    partial_cost.cpu_complexity = 2.0;
    partial_cost.output_selectivity = 0.3;
    OpHandle partial_op = graph_->CreateOp(ResourceType::kCpu, "agg-partial")
                              .Read(in.data)
                              .Create(partial)
                              .SetCost(partial_cost)
                              .SetM2i(2.0);
    MaybeSetUdf(partial_op, RegisterUdf([key_columns, aggs,
                                         out_partitions](const UdfInputs& inputs) {
      const auto& rows = *std::any_cast<std::vector<SqlRow>>(inputs[0]);
      // Ordered so per-bucket group order (and thus float merge order
      // downstream) is identical across platforms.
      std::map<std::string, PartialGroup> groups;
      for (const SqlRow& row : rows) {
        const std::string key = GroupKey(row, key_columns);
        PartialGroup& group = groups[key];
        if (group.aggs.empty()) {
          group.aggs.resize(aggs.size());
          for (int c : key_columns) {
            group.key_values.push_back(row[static_cast<size_t>(c)]);
          }
        }
        for (size_t a = 0; a < aggs.size(); ++a) {
          Accumulate(&group.aggs[a], aggs[a], row);
        }
      }
      std::vector<std::vector<PartialGroup>> buckets(static_cast<size_t>(out_partitions));
      for (auto& [key, group] : groups) {
        buckets[std::hash<std::string>{}(key) % static_cast<size_t>(out_partitions)]
            .push_back(std::move(group));
      }
      std::vector<std::any> bucket_anys;
      for (auto& bucket : buckets) {
        bucket_anys.emplace_back(std::move(bucket));
      }
      return std::vector<std::any>{std::any(std::move(bucket_anys))};
    }));
    if (in.creator.valid()) {
      in.creator.To(partial_op, DepKind::kAsync);
    }

    const DataId shuffled = graph_->CreateData(out_partitions, "agg-shuffled");
    OpHandle shuffle =
        graph_->CreateOp(ResourceType::kNetwork, "agg-shuffle").Read(partial).Create(shuffled);
    partial_op.To(shuffle, DepKind::kSync);

    const DataId final_data = graph_->CreateData(out_partitions, "agg-final");
    OpCostModel final_cost;
    final_cost.cpu_complexity = 1.5;
    final_cost.output_selectivity = 0.8;
    OpHandle final_op = graph_->CreateOp(ResourceType::kCpu, "agg-final")
                            .Read(shuffled)
                            .Create(final_data)
                            .SetCost(final_cost);
    MaybeSetUdf(final_op, RegisterUdf([key_columns, aggs, layout,
                                       global](const UdfInputs& inputs) {
      const auto& slices = *std::any_cast<std::vector<std::any>>(inputs[0]);
      // Ordered: the rows emitted below follow map order, making unordered
      // (no ORDER BY) aggregate results deterministic.
      std::map<std::string, PartialGroup> merged;
      for (const std::any& slice : slices) {
        for (const PartialGroup& group : *std::any_cast<std::vector<PartialGroup>>(&slice)) {
          std::string key;
          for (const SqlValue& value : group.key_values) {
            key += ToDisplayString(value);
            key += '\x1f';
          }
          auto [it, inserted] = merged.emplace(key, group);
          if (!inserted) {
            for (size_t a = 0; a < aggs.size(); ++a) {
              Merge(&it->second.aggs[a], group.aggs[a], aggs[a]);
            }
          }
        }
      }
      if (merged.empty() && global) {
        PartialGroup empty;
        empty.aggs.resize(aggs.size());
        merged.emplace("", std::move(empty));
      }
      std::vector<SqlRow> out_rows;
      for (auto& [key, group] : merged) {
        SqlRow row;
        for (const OutputItem& item : layout) {
          if (item.is_agg) {
            row.push_back(Finalize(group.aggs[static_cast<size_t>(item.index)],
                                   aggs[static_cast<size_t>(item.index)]));
          } else {
            row.push_back(group.key_values[static_cast<size_t>(item.index)]);
          }
        }
        out_rows.push_back(std::move(row));
      }
      return std::vector<std::any>{std::any(std::move(out_rows))};
    }));
    shuffle.To(final_op, DepKind::kAsync);

    Stream out;
    out.data = final_data;
    out.creator = final_op;
    out.schema = std::move(out_schema);
    out.partitions = out_partitions;
    out.est_bytes = in.est_bytes * 0.3;
    return out;
  }

  Stream Project(Stream in, const std::vector<SelectItem>& items) {
    std::vector<int> columns;
    SqlSchema schema;
    for (const SelectItem& item : items) {
      const int column = ResolveColumn(in.schema, item.column);
      CHECK_GE(column, 0) << "column not found: " << item.column;
      columns.push_back(column);
      schema.columns.push_back(
          SqlColumn{item.alias, in.schema.columns[static_cast<size_t>(column)].type});
    }
    const DataId projected = graph_->CreateData(in.partitions, "project");
    OpCostModel cost;
    cost.cpu_complexity = 0.5;
    cost.output_selectivity = 0.8;
    OpHandle op = graph_->CreateOp(ResourceType::kCpu, "project")
                      .Read(in.data)
                      .Create(projected)
                      .SetCost(cost);
    MaybeSetUdf(op, RegisterUdf([columns](const UdfInputs& inputs) {
      const auto& rows = *std::any_cast<std::vector<SqlRow>>(inputs[0]);
      std::vector<SqlRow> out_rows;
      out_rows.reserve(rows.size());
      for (const SqlRow& row : rows) {
        SqlRow projected_row;
        projected_row.reserve(columns.size());
        for (int c : columns) {
          projected_row.push_back(row[static_cast<size_t>(c)]);
        }
        out_rows.push_back(std::move(projected_row));
      }
      return std::vector<std::any>{std::any(std::move(out_rows))};
    }));
    if (in.creator.valid()) {
      in.creator.To(op, DepKind::kAsync);
    }
    Stream out;
    out.data = projected;
    out.creator = op;
    out.schema = std::move(schema);
    out.partitions = in.partitions;
    out.est_bytes = in.est_bytes * 0.8;
    return out;
  }

  Stream OrderAndLimit(Stream in, const SelectStatement& statement) {
    int sort_column = -1;
    bool descending = false;
    if (statement.order_by.has_value()) {
      sort_column = ResolveColumn(in.schema, statement.order_by->column);
      CHECK_GE(sort_column, 0) << "ORDER BY column not found: " << statement.order_by->column;
      descending = statement.order_by->descending;
    }
    const int64_t limit =
        statement.limit.has_value() ? *statement.limit : std::numeric_limits<int64_t>::max();

    // Gather everything to one partition, then sort/limit.
    const DataId gathered_msg = graph_->CreateData(in.partitions, "sort-msg");
    OpHandle wrap = graph_->CreateOp(ResourceType::kCpu, "sort-gatherprep")
                        .Read(in.data)
                        .Create(gathered_msg);
    MaybeSetUdf(wrap, RegisterUdf([](const UdfInputs& inputs) {
      std::vector<std::any> bucket = {*inputs[0]};
      return std::vector<std::any>{std::any(std::move(bucket))};
    }));
    if (in.creator.valid()) {
      in.creator.To(wrap, DepKind::kAsync);
    }
    const DataId gathered = graph_->CreateData(1, "sort-gathered");
    OpHandle shuffle = graph_->CreateOp(ResourceType::kNetwork, "sort-shuffle")
                           .Read(gathered_msg)
                           .Create(gathered);
    wrap.To(shuffle, DepKind::kSync);

    const DataId sorted = graph_->CreateData(1, "sorted");
    OpHandle sort_op = graph_->CreateOp(ResourceType::kCpu, "sort").Read(gathered).Create(sorted);
    MaybeSetUdf(sort_op, RegisterUdf([sort_column, descending, limit](const UdfInputs& inputs) {
      std::vector<SqlRow> rows = ConcatSlices(*std::any_cast<std::vector<std::any>>(inputs[0]));
      if (sort_column >= 0) {
        std::stable_sort(rows.begin(), rows.end(),
                         [sort_column, descending](const SqlRow& a, const SqlRow& b) {
                           const int cmp = CompareValues(a[static_cast<size_t>(sort_column)],
                                                         b[static_cast<size_t>(sort_column)]);
                           return descending ? cmp > 0 : cmp < 0;
                         });
      }
      if (static_cast<int64_t>(rows.size()) > limit) {
        rows.resize(static_cast<size_t>(limit));
      }
      return std::vector<std::any>{std::any(std::move(rows))};
    }));
    shuffle.To(sort_op, DepKind::kAsync);

    Stream out;
    out.data = sorted;
    out.creator = sort_op;
    out.schema = std::move(in.schema);
    out.partitions = 1;
    out.est_bytes = in.est_bytes;
    return out;
  }

  const SqlCatalog* catalog_;
  int shuffle_partitions_;
  OpGraph* graph_;
  LocalRuntime* runtime_;
};

}  // namespace

std::string SqlResult::ToString() const {
  std::ostringstream out;
  for (size_t c = 0; c < schema.columns.size(); ++c) {
    out << (c > 0 ? " | " : "") << schema.columns[c].name;
  }
  out << "\n";
  for (const SqlRow& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c > 0 ? " | " : "") << ToDisplayString(row[c]);
    }
    out << "\n";
  }
  return out.str();
}

SqlEngine::SqlEngine(const SqlCatalog* catalog, int shuffle_partitions)
    : catalog_(catalog), shuffle_partitions_(shuffle_partitions) {
  CHECK_GT(shuffle_partitions_, 0);
}

SqlResult SqlEngine::Execute(const std::string& query) {
  const SelectStatement statement = ParseSql(query);
  OpGraph graph;
  LocalRuntime runtime;
  PlanBuilder builder(catalog_, shuffle_partitions_, &graph, &runtime);
  SqlResult result;
  const Stream stream = builder.Build(statement, &result.schema);
  runtime.Run(graph);
  for (int p = 0; p < stream.partitions; ++p) {
    const auto& rows =
        *std::any_cast<std::vector<SqlRow>>(&runtime.Partition(stream.data, p));
    result.rows.insert(result.rows.end(), rows.begin(), rows.end());
  }
  return result;
}

JobSpec SqlEngine::CompileForSimulation(const std::string& query, double scale) const {
  const SelectStatement statement = ParseSql(query);
  JobSpec spec;
  spec.name = "sql";
  spec.klass = "sql";
  PlanBuilder builder(catalog_, shuffle_partitions_, &spec.graph, nullptr);
  SqlSchema schema;
  const Stream stream = builder.Build(statement, &schema);
  (void)stream;
  // Scale the external inputs to the requested volume.
  for (auto& dataset : spec.graph.mutable_datasets()) {
    for (double& bytes : dataset.external_sizes) {
      bytes *= scale;
    }
  }
  spec.declared_memory_bytes =
      std::max(1e9, 2.0 * spec.graph.TotalExternalInputBytes());
  spec.graph.Validate();
  return spec;
}

}  // namespace ursa
