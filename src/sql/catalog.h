// In-memory catalog of partitioned SQL tables.
#ifndef SRC_SQL_CATALOG_H_
#define SRC_SQL_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sql/value.h"

namespace ursa {

struct SqlTable {
  std::string name;
  SqlSchema schema;
  std::vector<std::vector<SqlRow>> partitions;

  int64_t num_rows() const {
    int64_t n = 0;
    for (const auto& p : partitions) {
      n += static_cast<int64_t>(p.size());
    }
    return n;
  }
  // Rough byte size used to seed simulator cost models.
  double approx_bytes() const;
};

class SqlCatalog {
 public:
  // Registers a table; rows are hash-distributed into `partitions` by the
  // first column when not pre-partitioned.
  void CreateTable(const std::string& name, SqlSchema schema, std::vector<SqlRow> rows,
                   int partitions);
  void CreateTablePartitioned(const std::string& name, SqlSchema schema,
                              std::vector<std::vector<SqlRow>> partitions);

  bool Has(const std::string& name) const { return tables_.count(name) > 0; }
  const SqlTable& Get(const std::string& name) const;

 private:
  std::unordered_map<std::string, SqlTable> tables_;
};

}  // namespace ursa

#endif  // SRC_SQL_CATALOG_H_
