// SQL engine: compiles a parsed SELECT statement into an OpGraph - scans
// with pushed-down filters, hash joins and aggregations as the paper's
// ser / sync-shuffle / deser pattern, ORDER BY / LIMIT as a gather stage -
// and executes it on LocalRuntime's per-resource monotask queues.
//
// Every op carries a cost model estimated from catalog statistics
// (row counts, textbook selectivity guesses), so the identical graph can
// also be submitted to the cluster simulator as a JobSpec.
#ifndef SRC_SQL_ENGINE_H_
#define SRC_SQL_ENGINE_H_

#include <string>
#include <vector>

#include "src/dag/job.h"
#include "src/sql/catalog.h"
#include "src/sql/parser.h"

namespace ursa {

struct SqlResult {
  SqlSchema schema;
  std::vector<SqlRow> rows;

  // Renders an aligned text table (for examples / debugging).
  std::string ToString() const;
};

class SqlEngine {
 public:
  explicit SqlEngine(const SqlCatalog* catalog, int shuffle_partitions = 4);

  // Parses, plans, executes; returns the materialized result.
  SqlResult Execute(const std::string& query);

  // Compiles the query into a simulator-ready JobSpec (cost models from
  // catalog statistics; no UDFs executed). `scale` multiplies the catalog's
  // byte sizes so toy tables can stand in for warehouse-scale ones.
  JobSpec CompileForSimulation(const std::string& query, double scale = 1.0) const;

 private:
  const SqlCatalog* catalog_;
  int shuffle_partitions_;
};

}  // namespace ursa

#endif  // SRC_SQL_ENGINE_H_
