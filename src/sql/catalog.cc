#include "src/sql/catalog.h"

#include "src/common/logging.h"

namespace ursa {

double SqlTable::approx_bytes() const {
  double bytes = 0.0;
  for (const auto& partition : partitions) {
    for (const SqlRow& row : partition) {
      for (const SqlValue& value : row) {
        if (std::holds_alternative<std::string>(value)) {
          bytes += 16.0 + static_cast<double>(std::get<std::string>(value).size());
        } else {
          bytes += 8.0;
        }
      }
    }
  }
  return bytes;
}

void SqlCatalog::CreateTable(const std::string& name, SqlSchema schema,
                             std::vector<SqlRow> rows, int partitions) {
  CHECK_GT(partitions, 0);
  CHECK(!Has(name)) << "table " << name << " already exists";
  SqlTable table;
  table.name = name;
  table.schema = std::move(schema);
  table.partitions.resize(static_cast<size_t>(partitions));
  for (SqlRow& row : rows) {
    CHECK_EQ(row.size(), table.schema.columns.size()) << "row arity mismatch in " << name;
    const size_t p = row.empty() ? 0 : HashValue(row[0]) % static_cast<size_t>(partitions);
    table.partitions[p].push_back(std::move(row));
  }
  tables_.emplace(name, std::move(table));
}

void SqlCatalog::CreateTablePartitioned(const std::string& name, SqlSchema schema,
                                        std::vector<std::vector<SqlRow>> partitions) {
  CHECK(!partitions.empty());
  CHECK(!Has(name)) << "table " << name << " already exists";
  SqlTable table;
  table.name = name;
  table.schema = std::move(schema);
  table.partitions = std::move(partitions);
  tables_.emplace(name, std::move(table));
}

const SqlTable& SqlCatalog::Get(const std::string& name) const {
  auto it = tables_.find(name);
  CHECK(it != tables_.end()) << "unknown table: " << name;
  return it->second;
}

}  // namespace ursa
