// SQL lexer, AST, and recursive-descent parser for the supported subset:
//
//   SELECT <cols | aggregates> FROM t [JOIN t2 ON a = b]...
//     [WHERE <conjunction of comparisons>]
//     [GROUP BY cols] [ORDER BY col [ASC|DESC]] [LIMIT n]
//
// Aggregates: COUNT(*), COUNT(c), SUM(c), MIN(c), MAX(c), AVG(c).
// Comparisons: =, !=, <>, <, <=, >, >= against literals (or between columns
// in JOIN ... ON). Identifiers may be qualified (table.column).
#ifndef SRC_SQL_PARSER_H_
#define SRC_SQL_PARSER_H_

#include <optional>
#include <string>
#include <vector>

#include "src/sql/value.h"

namespace ursa {

enum class AggFn : int {
  kNone = 0,
  kCount = 1,
  kSum = 2,
  kMin = 3,
  kMax = 4,
  kAvg = 5,
};

struct SelectItem {
  AggFn agg = AggFn::kNone;
  std::string column;  // Empty for COUNT(*).
  std::string alias;   // Output column name.
};

enum class CompareOp : int {
  kEq = 0,
  kNe = 1,
  kLt = 2,
  kLe = 3,
  kGt = 4,
  kGe = 5,
};

struct Predicate {
  std::string column;
  CompareOp op = CompareOp::kEq;
  SqlValue literal;
};

struct JoinClause {
  std::string table;
  std::string left_column;   // From tables joined so far.
  std::string right_column;  // From the newly joined table.
};

struct OrderBy {
  std::string column;
  bool descending = false;
};

struct SelectStatement {
  std::vector<SelectItem> items;
  std::string from_table;
  std::vector<JoinClause> joins;
  std::vector<Predicate> where;  // Conjunction.
  std::vector<std::string> group_by;
  std::optional<OrderBy> order_by;
  std::optional<int64_t> limit;

  bool has_aggregates() const {
    for (const SelectItem& item : items) {
      if (item.agg != AggFn::kNone) {
        return true;
      }
    }
    return false;
  }
};

// Parses one SELECT statement; CHECK-fails with a diagnostic on syntax
// errors (the engine wraps this for tests via ParseOrError).
SelectStatement ParseSql(const std::string& query);

// Non-fatal variant: returns false and fills *error on syntax errors.
bool TryParseSql(const std::string& query, SelectStatement* out, std::string* error);

}  // namespace ursa

#endif  // SRC_SQL_PARSER_H_
